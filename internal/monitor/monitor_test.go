package monitor

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// testConfig keeps the reservoirs and calibration small enough that a test
// can fill and score them with a few hundred samples.
func testConfig() Config {
	return Config{
		QueueBlocks:  8,
		BlockRows:    16,
		EvalEvery:    64,
		BaselineSize: 64,
		WindowSize:   32,
		Threshold:    2,
		HistoryLen:   64,
		Calibrate:    stats.CalibrateConfig{Resamples: 30, PValue: 0.05},
		Seed:         7,
	}
}

func testReference(dim int) Reference {
	memA := make(tensor.Vector, dim)
	memB := make(tensor.Vector, dim)
	for i := range memB {
		memB[i] = 3
	}
	return Reference{
		SnapshotVersion: 1,
		Dim:             dim,
		Epsilon:         0.25,
		RouteEpsilon:    1,
		Experts:         []ExpertRef{{ID: 0, Memory: memA}, {ID: 2, Memory: memB}},
	}
}

// feed pushes n samples drawn from N(mean, sigma²) per dim through the
// producer API, attributing them to expertID.
func feed(t *testing.T, m *Monitor, rng *tensor.RNG, mean, sigma float64, n, expertID int, matched bool) {
	t.Helper()
	dim := m.ref.Load().Dim
	emb := make(tensor.Vector, dim)
	blk := m.Acquire()
	for i := 0; i < n; i++ {
		for d := range emb {
			emb[d] = rng.Norm()*sigma + mean
		}
		if blk == nil {
			blk = m.Acquire()
		}
		if blk == nil {
			t.Fatal("freelist exhausted mid-feed")
		}
		blk.Add(emb, expertID, 0.5, matched)
		if blk.Full() {
			m.Offer(blk)
			// Serialize with the consumer: a real producer would keep
			// going (drop-oldest absorbs bursts), but these tests assert
			// exact sample counts.
			m.Flush()
			blk = nil
		}
	}
	if blk != nil {
		if blk.Len() > 0 {
			m.Offer(blk)
		} else {
			m.Recycle(blk)
		}
	}
	m.Flush()
}

func TestDropOldestBackpressure(t *testing.T) {
	m := New(testConfig())
	m.SetReference(testReference(4))
	m.Close() // stop the consumer so the queue genuinely fills

	emb := tensor.Vector{1, 2, 3, 4}
	offered := 0
	for i := 0; i < m.QueueCapacity()+3; i++ {
		b := m.Acquire()
		if b == nil {
			t.Fatalf("no free block at offer %d", i)
		}
		for !b.Full() {
			b.Add(emb, 0, 0.5, true)
		}
		offered += b.Len()
		m.Offer(b)
	}
	if got := m.QueueDepth(); got != m.QueueCapacity() {
		t.Fatalf("queue depth %d, want full (%d)", got, m.QueueCapacity())
	}
	wantDropped := uint64(3 * m.cfg.BlockRows)
	if got := m.Dropped(); got != wantDropped {
		t.Fatalf("dropped %d samples, want %d (drop-oldest eviction)", got, wantDropped)
	}
	if got := m.Teed(); got != uint64(offered) {
		t.Fatalf("teed %d, want %d", got, offered)
	}
}

func TestProducerPathAllocationFree(t *testing.T) {
	m := New(testConfig())
	m.SetReference(testReference(8))
	m.Close() // no consumer: the drop-oldest path recycles blocks for us

	emb := make(tensor.Vector, 8)
	if n := testing.AllocsPerRun(2000, func() {
		b := m.Acquire()
		if b == nil {
			panic("no free block")
		}
		for !b.Full() {
			b.Add(emb, 2, 0.5, true)
		}
		b.SetHits(0)
		m.Offer(b)
	}); n != 0 {
		t.Fatalf("producer tee allocates %.1f/op, want 0", n)
	}
}

func TestSketchesAndEvaluation(t *testing.T) {
	m := New(testConfig())
	defer m.Close()
	m.SetReference(testReference(8))
	rng := tensor.NewRNG(42)

	// Clean phase: enough to fill the baseline, calibrate, and fill the
	// recent window around expert 2's memory (mean 3).
	feed(t, m, rng, 3, 0.1, 200, 2, true)
	s := m.Summary()
	if s.Samples != 200 {
		t.Fatalf("folded %d samples, want 200", s.Samples)
	}
	if !s.BaselineFilled || !s.Calibrated {
		t.Fatalf("baseline/calibration not ready: %+v", s)
	}
	if s.Evals == 0 {
		t.Fatal("no evaluation ran")
	}
	if s.Crossings != 0 {
		t.Fatalf("clean traffic produced %d threshold crossings (score %.2f)", s.Crossings, s.Score)
	}
	if s.FallbackRate != 0 {
		t.Fatalf("fallback rate %.2f for fully matched traffic", s.FallbackRate)
	}
	var bucketSum uint64
	for _, c := range s.MarginBuckets {
		bucketSum += c
	}
	if bucketSum != s.Samples {
		t.Fatalf("margin histogram holds %d observations, want %d", bucketSum, s.Samples)
	}
	// dist 0.5 against routeEps 1 lands every sample in the (0.25, 0.5] bucket.
	if s.MarginBuckets[1] != s.Samples {
		t.Fatalf("margin mass not in the 0.5 bucket: %v", s.MarginBuckets)
	}
	found := false
	for _, e := range s.Experts {
		if e.ID == 2 {
			found = true
			if e.Score > 1 {
				t.Fatalf("expert 2 on-memory traffic scored %.2f (>1 = outside radius)", e.Score)
			}
		}
	}
	if !found {
		t.Fatalf("no drift entry for expert 2: %+v", s.Experts)
	}

	// Shifted phase: traffic jumps far from the baseline; the global score
	// must cross and expert 2's live mean must leave its radius.
	feed(t, m, rng, 9, 0.1, 200, 2, false)
	s = m.Summary()
	if !s.Crossed || s.Crossings == 0 {
		t.Fatalf("injected shift not detected: score %.2f (δ %.3g, threshold %.1f)", s.Score, s.Delta, s.Threshold)
	}
	if s.FallbackRate == 0 {
		t.Fatal("fallback EWMA did not move on unmatched traffic")
	}
	if s.MaxExpertID != 2 || s.MaxExpertScore <= 1 {
		t.Fatalf("expert drift not surfaced: maxExpert=%d score=%.2f", s.MaxExpertID, s.MaxExpertScore)
	}

	evs := m.Evaluations(0, -1)
	if len(evs) == 0 {
		t.Fatal("evaluation ring empty")
	}
	for i, ev := range evs {
		if ev.Err != "" {
			t.Fatalf("eval %d errored: %s", i, ev.Err)
		}
		if math.IsNaN(ev.Score) {
			t.Fatalf("eval %d has NaN score", i)
		}
	}
	// Filtered view keeps only the requested expert's entries.
	for _, ev := range m.Evaluations(0, 2) {
		for _, e := range ev.Experts {
			if e.ID != 2 {
				t.Fatalf("expert filter leaked ID %d", e.ID)
			}
		}
	}
}

func TestSetReferenceResetsSketches(t *testing.T) {
	m := New(testConfig())
	defer m.Close()
	m.SetReference(testReference(8))
	rng := tensor.NewRNG(9)
	feed(t, m, rng, 3, 0.1, 120, 2, true)
	if s := m.Summary(); s.Samples != 120 {
		t.Fatalf("folded %d, want 120", s.Samples)
	}

	// Blocks acquired against the old reference must be discarded as stale.
	stale := m.Acquire()
	emb := make(tensor.Vector, 8)
	stale.Add(emb, 2, 0.5, true)

	next := testReference(8)
	next.SnapshotVersion = 2
	m.SetReference(next)
	m.Offer(stale)
	feed(t, m, rng, 3, 0.1, 40, 2, true)

	s := m.Summary()
	if s.SnapshotVersion != 2 {
		t.Fatalf("summary still on snapshot %d", s.SnapshotVersion)
	}
	if s.Samples != 40 {
		t.Fatalf("sketches not reset: %d samples (want 40)", s.Samples)
	}
	if s.Stale != 1 {
		t.Fatalf("stale pre-swap sample not counted: stale=%d", s.Stale)
	}
	if s.BaselineFilled {
		t.Fatal("baseline survived the reference change")
	}
}

func TestPoisonedEmbeddingsRejected(t *testing.T) {
	m := New(testConfig())
	defer m.Close()
	m.SetReference(testReference(4))
	b := m.Acquire()
	b.Add(tensor.Vector{1, 2, 3, 4}, 0, 0.5, true)
	b.Add(tensor.Vector{1, math.NaN(), 3, 4}, 0, 0.5, true)
	m.Offer(b)
	m.Flush()
	s := m.Summary()
	if s.Samples != 1 || s.Poisoned != 1 {
		t.Fatalf("samples=%d poisoned=%d, want 1/1", s.Samples, s.Poisoned)
	}
}

// TestSampleEverySubsamples pins the CPU governor: with SampleEvery=4 only
// every fourth queued block is folded, the rest are recycled with their
// samples counted as dropped, and the tee clock still counts everything.
func TestSampleEverySubsamples(t *testing.T) {
	cfg := testConfig()
	cfg.SampleEvery = 4
	m := New(cfg)
	defer m.Close()
	m.SetReference(testReference(4))

	emb := tensor.Vector{1, 2, 3, 4}
	const blocks = 8
	for i := 0; i < blocks; i++ {
		b := m.Acquire()
		if b == nil {
			t.Fatalf("no free block at %d", i)
		}
		for !b.Full() {
			b.Add(emb, 0, 0.5, true)
		}
		m.Offer(b)
		m.Flush() // serialize so the every-Nth pattern is deterministic
	}
	rows := uint64(cfg.BlockRows)
	s := m.Summary()
	if want := (blocks / 4) * rows; s.Samples != want {
		t.Fatalf("folded %d samples, want %d (every 4th of %d blocks)", s.Samples, want, blocks)
	}
	if want := (blocks - blocks/4) * rows; s.Dropped != want {
		t.Fatalf("dropped %d samples, want %d", s.Dropped, want)
	}
	if want := blocks * rows; s.Teed != want {
		t.Fatalf("teed %d, want %d — sampling must not touch the tee clock", s.Teed, want)
	}
}

func TestDriftHandler(t *testing.T) {
	m := New(testConfig())
	defer m.Close()
	m.SetReference(testReference(8))
	feed(t, m, tensor.NewRNG(3), 3, 0.1, 150, 2, true)

	h := Handler("default", m)
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/v1/debug/drift", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	var st DriftState
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad body: %v", err)
	}
	if !st.Enabled || st.Model != "default" || st.SchemaVersion != 1 {
		t.Fatalf("bad envelope: %+v", st)
	}
	if st.Summary == nil || st.Summary.Samples != 150 {
		t.Fatalf("bad summary: %+v", st.Summary)
	}
	if len(st.Evals) == 0 {
		t.Fatal("no evaluations in the page")
	}

	// Summary-only page for the gateway scrape.
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/v1/debug/drift?n=0", nil))
	var only DriftState
	if err := json.Unmarshal(rec.Body.Bytes(), &only); err != nil || len(only.Evals) != 0 {
		t.Fatalf("n=0 page returned evals (err %v): %+v", err, only.Evals)
	}

	// Disabled daemon still answers 200 with a schema-sane body.
	rec = httptest.NewRecorder()
	Handler("default", nil)(rec, httptest.NewRequest("GET", "/v1/debug/drift", nil))
	if rec.Code != 200 {
		t.Fatalf("nil-monitor status %d, want 200", rec.Code)
	}
	var off DriftState
	if err := json.Unmarshal(rec.Body.Bytes(), &off); err != nil || off.Enabled {
		t.Fatalf("nil-monitor body wrong (err %v): %+v", err, off)
	}

	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/v1/debug/drift?n=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bad n: status %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/v1/debug/drift?expert=-2", nil))
	if rec.Code != 400 {
		t.Fatalf("bad expert: status %d, want 400", rec.Code)
	}
}
