package monitor

import (
	"net/http"
	"strconv"

	"repro/internal/httpapi"
)

// DriftState is the GET /v1/debug/drift payload: the monitor's aggregate
// summary plus the ring of recent drift evaluations. The gateway's probe
// loop scrapes the same body (with ?n=0) for fleet-wide aggregation.
type DriftState struct {
	SchemaVersion int    `json:"schemaVersion"`
	Model         string `json:"model"`
	// Enabled is false when the daemon runs without a monitor; the endpoint
	// still answers 200 so scrapers need no special-casing.
	Enabled       bool         `json:"enabled"`
	QueueDepth    int          `json:"queueDepth"`
	QueueCapacity int          `json:"queueCapacity"`
	Summary       *Summary     `json:"summary,omitempty"`
	Evals         []Evaluation `json:"evals,omitempty"`
}

// DefaultEvalsReturned bounds how many ring entries one unparameterized
// /v1/debug/drift request returns.
const DefaultEvalsReturned = 32

// State assembles the drift endpoint payload: up to n evaluations (n < 0
// selects the default page size, n == 0 none — the gateway's summary-only
// scrape), optionally filtered to one expert ID (-1 keeps all).
func (m *Monitor) State(model string, n, expert int) DriftState {
	st := DriftState{
		SchemaVersion: httpapi.SchemaVersion,
		Model:         model,
		Enabled:       true,
		QueueDepth:    m.QueueDepth(),
		QueueCapacity: m.QueueCapacity(),
		Summary:       m.Summary(),
	}
	if n != 0 {
		if n < 0 {
			n = DefaultEvalsReturned
		}
		st.Evals = m.Evaluations(n, expert)
	}
	return st
}

// Handler serves GET /v1/debug/drift for the given monitor (nil answers an
// Enabled:false body, still 200). Query parameters: ?n=<int> bounds the
// evaluation page (0 = summary only), ?expert=<id> filters per-expert
// entries.
func Handler(model string, m *Monitor) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpapi.WriteError(w, http.StatusMethodNotAllowed, "GET required")
			return
		}
		if m == nil {
			httpapi.WriteJSON(w, http.StatusOK, DriftState{
				SchemaVersion: httpapi.SchemaVersion, Model: model,
			})
			return
		}
		n, expert := -1, -1
		if v := r.URL.Query().Get("n"); v != "" {
			i, err := strconv.Atoi(v)
			if err != nil || i < 0 {
				httpapi.WriteError(w, http.StatusBadRequest, "n must be a non-negative integer")
				return
			}
			n = i
		}
		if v := r.URL.Query().Get("expert"); v != "" {
			i, err := strconv.Atoi(v)
			if err != nil || i < 0 {
				httpapi.WriteError(w, http.StatusBadRequest, "expert must be a non-negative expert ID")
				return
			}
			expert = i
		}
		httpapi.WriteJSON(w, http.StatusOK, m.State(model, n, expert))
	}
}
