// Package continual closes the ShiftEx loop at serving time: it connects the
// drift observability plane (internal/monitor) back to the adaptation
// pipeline (internal/shiftex) so a running server reacts to a detected regime
// change instead of only reporting it. A Controller subscribes to the
// monitor's drift evaluations; when a confirmed threshold crossing arrives it
// harvests the monitor's live sketches, drives a real adaptation window
// (detect → calibrate → assign → train → consolidate) through a Trainer, and
// — after a validation gate on held-back live embeddings — hot-swaps the
// resulting snapshot through the server's atomic pointer.
//
// The controller is built to be production-safe rather than merely
// demonstrative: triggers require Hysteresis consecutive crossed evaluations
// (one noisy evaluation never trains), a cooldown after every window absorbs
// the post-swap re-baselining transient, exactly one window is ever in flight
// (the run loop is the guard — triggers arriving mid-window coalesce into a
// suppressed count), promotion is gated on the candidate not regressing
// held-back live routing quality, and the aggregator's own atomic-window
// rollback backstops any mid-pipeline failure.
package continual

import (
	"errors"
	"sync"
	"time"

	"repro/internal/httpapi"
	"repro/internal/monitor"
	"repro/internal/serve"
	"repro/internal/shiftex"
	"repro/internal/tensor"
)

// DriftSource is the controller's view of the drift monitor: a push feed of
// evaluations (the trigger signal) and a pull export of the live sketches
// (the window's input statistics). *monitor.Monitor implements it.
type DriftSource interface {
	Subscribe(buf int) <-chan monitor.Evaluation
	Sketches() *monitor.Sketches
}

var _ DriftSource = (*monitor.Monitor)(nil)

// Target is the serving side the controller adapts: the current snapshot
// (validation baseline and staleness check) and the hot-swap entry point.
// *serve.Server implements it.
type Target interface {
	Snapshot() *serve.Snapshot
	Swap(*serve.Snapshot) error
}

var _ Target = (*serve.Server)(nil)

// Candidate is one adaptation window's output, pending promotion.
type Candidate struct {
	// Snapshot is the candidate serving snapshot built from the post-window
	// aggregator state. Its Version is stamped only if Swap promotes it.
	Snapshot *serve.Snapshot
	// Report is the window report of the pipeline run that produced it.
	Report *shiftex.WindowReport
	// State is the post-window aggregator state; Promote folds it back into
	// the trainer so the next live window stacks on this one.
	State shiftex.State
	// Radii is the acceptance-radius overlay (expert ID → squared-distance
	// radius) already stamped on Snapshot — live-created experts carry a
	// radius calibrated on single-request embedding spread, which the
	// window-mean-calibrated route radius cannot cover. Promote carries it
	// forward so later windows re-stamp it.
	Radii map[int]float64
}

// Trainer runs one adaptation window from harvested live sketches. The
// controller calls AdaptWindow with exactly one window in flight; Promote is
// called only after the candidate passed validation and was swapped in.
type Trainer interface {
	AdaptWindow(sk *monitor.Sketches) (*Candidate, error)
	Promote(c *Candidate)
}

// ValidationConfig tunes the promotion gate: the candidate snapshot must not
// regress held-back live routing quality before it may replace the serving
// snapshot.
type ValidationConfig struct {
	// Disabled skips the gate (every completed window promotes).
	Disabled bool
	// MinSamples is the minimum number of held-back live embeddings needed
	// to judge a candidate; with fewer the gate abstains and promotes
	// (default 32).
	MinSamples int
	// Tolerance is how much the candidate's matched fraction may fall below
	// the serving snapshot's before the gate rejects (default 0.05).
	Tolerance float64
}

// Config tunes the adaptation controller. Zero values select the defaults.
type Config struct {
	// Hysteresis is how many consecutive crossed evaluations arm a trigger
	// (default 2): one noisy evaluation never starts a training window.
	Hysteresis int
	// Cooldown is the refractory period after a window — swapped, rejected,
	// or rolled back — during which triggers are suppressed (default 30s).
	// It absorbs the post-swap transient while the monitor re-baselines
	// against the new reference.
	Cooldown time.Duration
	// Validation tunes the promotion gate.
	Validation ValidationConfig
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Hysteresis <= 0 {
		c.Hysteresis = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.Validation.MinSamples <= 0 {
		c.Validation.MinSamples = 32
	}
	if c.Validation.Tolerance <= 0 {
		c.Validation.Tolerance = 0.05
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Phase names, as surfaced in /v1/state and the shiftex_continual_phase
// metric family.
const (
	PhaseIdle       = "idle"
	PhaseAdapting   = "adapting"
	PhaseValidating = "validating"
	PhaseCooldown   = "cooldown"
)

// Window outcomes, as surfaced in lastWindow.outcome and the
// shiftex_continual_windows_total counter family.
const (
	OutcomeSwapped    = "swapped"
	OutcomeRejected   = "rejected"
	OutcomeRolledBack = "rolled-back"
)

// Controller is the live continual-adaptation state machine. Create with
// New, arm with Start, stop with Close. It implements serve.AdaptReporter,
// so AttachAdaptation surfaces its state on /v1/state, /v1/metrics, and
// /v1/debug/adapt.
type Controller struct {
	src DriftSource
	tgt Target
	tr  Trainer
	cfg Config

	evals <-chan monitor.Evaluation
	stop  chan struct{}
	done  chan struct{}

	mu sync.Mutex
	st status

	startOnce sync.Once
	closeOnce sync.Once
}

// status is the mutable state-machine record behind ContinualState. The run
// loop writes it under mu; HTTP handlers read it under mu.
type status struct {
	phase        string
	consecutive  int
	cooldownTill time.Time

	triggers   uint64
	suppressed uint64
	completed  uint64
	rolledBack uint64
	rejected   uint64

	lastTrigger *httpapi.ContinualTrigger
	lastWindow  *httpapi.ContinualWindow
}

var _ serve.AdaptReporter = (*Controller)(nil)

// New builds a controller over the given drift source, serving target, and
// trainer. Start must be called to arm it.
func New(src DriftSource, tgt Target, tr Trainer, cfg Config) (*Controller, error) {
	if src == nil || tgt == nil || tr == nil {
		return nil, errors.New("continual: nil drift source, target, or trainer")
	}
	return &Controller{
		src:  src,
		tgt:  tgt,
		tr:   tr,
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// Start subscribes to the drift source and launches the run loop. Calling it
// more than once is a no-op.
func (c *Controller) Start() {
	c.startOnce.Do(func() {
		c.evals = c.src.Subscribe(16)
		c.mu.Lock()
		c.st.phase = PhaseIdle
		c.mu.Unlock()
		go c.run()
	})
}

// Close stops the run loop and waits for it to exit. A window already in
// flight completes first (the aggregator's rollback keeps it atomic either
// way). Safe to call more than once.
func (c *Controller) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
	if c.evals != nil {
		<-c.done
	}
}

// run is the controller goroutine: the single consumer of the evaluation
// feed, and — because windows run synchronously on it — the structural
// guarantee that at most one adaptation window is ever in flight.
func (c *Controller) run() {
	defer close(c.done)
	for {
		select {
		case <-c.stop:
			return
		case ev, ok := <-c.evals:
			if !ok {
				return
			}
			if c.observe(ev) {
				c.adapt()
				c.drainCoalesced()
			}
		}
	}
}

// observe folds one evaluation into the trigger state and reports whether it
// armed a window.
func (c *Controller) observe(ev monitor.Evaluation) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()

	// Cooldown expiry is checked on evaluation arrival — the controller has
	// no timers; nothing can happen between evaluations anyway.
	if c.st.phase == PhaseCooldown && !now.Before(c.st.cooldownTill) {
		c.st.phase = PhaseIdle
		c.st.consecutive = 0
	}

	// Evaluations from a snapshot no longer serving (queued across a swap)
	// must not count: they scored traffic against retired memories.
	if cur := c.tgt.Snapshot(); cur == nil || ev.SnapshotVersion != cur.Version {
		c.st.consecutive = 0
		return false
	}
	if ev.Err != "" || !ev.Crossed {
		c.st.consecutive = 0
		return false
	}

	if c.st.phase == PhaseCooldown {
		// A crossing that would have triggered, absorbed by the refractory
		// period.
		c.st.consecutive++
		if c.st.consecutive >= c.cfg.Hysteresis {
			c.st.suppressed++
			c.st.consecutive = 0
		}
		return false
	}

	c.st.consecutive++
	if c.st.consecutive < c.cfg.Hysteresis {
		return false
	}
	c.st.consecutive = 0
	c.st.triggers++
	c.st.phase = PhaseAdapting
	c.st.lastTrigger = &httpapi.ContinualTrigger{
		Seq:             ev.Seq,
		Score:           ev.Score,
		TeedAt:          ev.TeedAt,
		UnixNanos:       ev.UnixNanos,
		SnapshotVersion: ev.SnapshotVersion,
	}
	return true
}

// adapt runs one full window: harvest sketches, train, validate, promote.
// Any failure is recorded and the controller enters cooldown regardless of
// outcome — a failing pipeline must not spin-train.
func (c *Controller) adapt() {
	start := c.cfg.Now()
	win := &httpapi.ContinualWindow{StartedUnixNanos: start.UnixNano()}
	defer func() {
		win.DurationMs = float64(c.cfg.Now().Sub(start).Microseconds()) / 1e3
		c.mu.Lock()
		c.st.lastWindow = win
		c.st.phase = PhaseCooldown
		c.st.cooldownTill = c.cfg.Now().Add(c.cfg.Cooldown)
		c.st.consecutive = 0
		c.mu.Unlock()
	}()

	fail := func(err error) {
		win.Outcome = OutcomeRolledBack
		win.Error = err.Error()
		c.mu.Lock()
		c.st.rolledBack++
		c.mu.Unlock()
	}

	sk := c.src.Sketches()
	if sk == nil || len(sk.Recent) == 0 {
		fail(errors.New("continual: no live sketches to adapt from"))
		return
	}
	cand, err := c.tr.AdaptWindow(sk)
	if err != nil {
		fail(err)
		return
	}
	win.Window = cand.Report.Window
	win.ShiftedParties = cand.Report.ShiftedCov
	win.NewExperts = cand.Report.NewExperts
	win.Merged = cand.Report.Merged
	win.ExpertsAfter = cand.Report.ExpertsAfter

	c.setPhase(PhaseValidating)
	cur := c.tgt.Snapshot()
	val := validate(cur, cand.Snapshot, sk.Recent, cur.RouteEpsilon(), c.cfg.Validation)
	win.Validation = val
	if !val.Passed {
		win.Outcome = OutcomeRejected
		c.mu.Lock()
		c.st.rejected++
		c.mu.Unlock()
		return
	}

	if err := c.tgt.Swap(cand.Snapshot); err != nil {
		fail(err)
		return
	}
	// The swap re-referenced the monitor (serve.Swap → SetReference), so the
	// sketches re-baseline against the new expert pool: a successfully
	// handled shift does not keep crossing the threshold forever.
	c.tr.Promote(cand)
	win.Outcome = OutcomeSwapped
	win.SwappedVersion = cand.Snapshot.Version
	c.mu.Lock()
	c.st.completed++
	c.mu.Unlock()
}

// drainCoalesced empties evaluations that queued while a window was in
// flight. Crossed ones are triggers that coalesced into the window already
// running; they count as suppressed, never as new windows.
func (c *Controller) drainCoalesced() {
	for {
		select {
		case ev, ok := <-c.evals:
			if !ok {
				return
			}
			if ev.Crossed && ev.Err == "" {
				c.mu.Lock()
				c.st.suppressed++
				c.mu.Unlock()
			}
		default:
			return
		}
	}
}

func (c *Controller) setPhase(p string) {
	c.mu.Lock()
	c.st.phase = p
	c.mu.Unlock()
}

// ContinualState renders the state machine for /v1/state, /v1/debug/adapt,
// and the shiftex_continual_* metric families (serve.AdaptReporter).
func (c *Controller) ContinualState() *httpapi.ContinualState {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	phase := c.st.phase
	if phase == "" {
		phase = PhaseIdle
	}
	remaining := 0.0
	if phase == PhaseCooldown {
		if d := c.st.cooldownTill.Sub(now); d > 0 {
			remaining = d.Seconds()
		} else {
			phase = PhaseIdle
		}
	}
	out := &httpapi.ContinualState{
		Phase:                    phase,
		ConsecutiveCrossed:       c.st.consecutive,
		Hysteresis:               c.cfg.Hysteresis,
		CooldownSeconds:          c.cfg.Cooldown.Seconds(),
		CooldownRemainingSeconds: remaining,
		Triggers:                 c.st.triggers,
		TriggersSuppressed:       c.st.suppressed,
		WindowsCompleted:         c.st.completed,
		WindowsRolledBack:        c.st.rolledBack,
		WindowsRejected:          c.st.rejected,
	}
	if snap := c.tgt.Snapshot(); snap != nil {
		out.SnapshotVersion = snap.Version
	}
	if c.st.lastTrigger != nil {
		t := *c.st.lastTrigger
		out.LastTrigger = &t
	}
	if c.st.lastWindow != nil {
		w := *c.st.lastWindow
		if c.st.lastWindow.Validation != nil {
			v := *c.st.lastWindow.Validation
			w.Validation = &v
		}
		out.LastWindow = &w
	}
	return out
}

// validate scores candidate against serving snapshot on the held-back live
// embeddings under the serving acceptance radius: the candidate must not
// regress the matched fraction by more than the configured tolerance. With
// fewer than MinSamples embeddings the gate abstains (promotes) — it cannot
// judge, and the aggregator's rollback already guarantees the candidate is a
// coherent state.
func validate(cur, cand *serve.Snapshot, sample []tensor.Vector, eps float64, cfg ValidationConfig) *httpapi.ContinualValidation {
	v := &httpapi.ContinualValidation{Samples: len(sample)}
	if cfg.Disabled || len(sample) < cfg.MinSamples {
		v.Passed = true
		return v
	}
	score := func(s *serve.Snapshot) (matched, meanMargin float64) {
		var hits int
		var sum float64
		var finite int
		for _, emb := range sample {
			_, dist, ok := s.MatchEmbedding(emb, eps)
			if ok {
				hits++
			}
			if dist < 1e300 { // +Inf means no memory to match at all
				sum += dist
				finite++
			}
		}
		matched = float64(hits) / float64(len(sample))
		if finite > 0 && eps > 0 {
			meanMargin = (sum / float64(finite)) / eps
		}
		return matched, meanMargin
	}
	v.BaselineMatched, v.BaselineMeanMargin = score(cur)
	v.CandidateMatched, v.CandidateMeanMargin = score(cand)
	v.Passed = v.CandidateMatched+cfg.Tolerance >= v.BaselineMatched
	return v
}
