package continual

import (
	"context"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/service"
	"repro/internal/stats"
)

// TestClosedLoopEndToEnd drives the full loop against the real checkpoint
// under concurrent traffic: clean warmup → injected covariate shift →
// detection → live adaptation window → validation → hot swap → recovery,
// with the CI gate asserting the post-swap routing strictly improves. The
// -race runs of this test are the concurrency proof for the whole
// monitor → controller → trainer → swap path.
func TestClosedLoopEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop bench needs monitor calibration; skipped in -short")
	}
	cp, err := service.LoadCheckpoint(tinyCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	a, err := RunAdaptLiveBench(ctx, cp, BenchConfig{
		SamplesPerParty: 40,
		TestPerParty:    20,
		Concurrency:     8,
		Monitor: monitor.Config{
			EvalEvery:    512,
			BaselineSize: 160,
			WindowSize:   160,
			Calibrate:    stats.CalibrateConfig{Resamples: 20},
		},
		Controller: Config{Cooldown: time.Hour}, // recovery pass must not race a second window
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("artifact invalid: %v", err)
	}
	if err := a.CheckAdaptLive(); err != nil {
		t.Fatalf("closed loop gate failed: %v\nartifact: %+v", err, a)
	}
	if a.AdaptLatencyMs <= 0 {
		t.Fatalf("loop closed but latency not recorded: %+v", a)
	}
	if a.ValidationCandidateMatched <= a.ValidationBaselineMatched {
		t.Fatalf("live radius did not lift validation matching: %.3f vs %.3f",
			a.ValidationCandidateMatched, a.ValidationBaselineMatched)
	}
}
