package continual

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/serve"
	"repro/internal/service"
	"repro/internal/shiftex"
	"repro/internal/tensor"
)

const tinyCheckpoint = "../serve/testdata/checkpoint_tiny.json"

func loadTiny(t *testing.T) (*service.Checkpoint, *serve.Snapshot) {
	t.Helper()
	cp, err := service.LoadCheckpoint(tinyCheckpoint)
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	snap, err := serve.SnapshotFromCheckpoint(cp)
	if err != nil {
		t.Fatalf("build snapshot: %v", err)
	}
	snap.Version = 1
	return cp, snap
}

// fakeSource feeds the controller hand-crafted evaluations and sketches.
type fakeSource struct {
	ch chan monitor.Evaluation
	sk *monitor.Sketches
}

func (f *fakeSource) Subscribe(int) <-chan monitor.Evaluation { return f.ch }
func (f *fakeSource) Sketches() *monitor.Sketches             { return f.sk }

// fakeTarget mimics serve.Server's swap contract: Version is stamped on
// promotion, never before.
type fakeTarget struct {
	mu    sync.Mutex
	snap  *serve.Snapshot
	swaps int
}

func (f *fakeTarget) Snapshot() *serve.Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snap
}

func (f *fakeTarget) Swap(s *serve.Snapshot) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	s.Version = f.snap.Version + 1
	f.snap = s
	f.swaps++
	return nil
}

func (f *fakeTarget) swapCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.swaps
}

// fakeTrainer returns a canned candidate (or error); block, when non-nil,
// holds AdaptWindow open so the test can queue coalescing evaluations.
type fakeTrainer struct {
	mu       sync.Mutex
	cand     *Candidate
	err      error
	block    chan struct{}
	windows  int
	promotes int
}

func (f *fakeTrainer) AdaptWindow(*monitor.Sketches) (*Candidate, error) {
	f.mu.Lock()
	f.windows++
	block, cand, err := f.block, f.cand, f.err
	f.mu.Unlock()
	if block != nil {
		<-block
	}
	return cand, err
}

func (f *fakeTrainer) Promote(*Candidate) {
	f.mu.Lock()
	f.promotes++
	f.mu.Unlock()
}

func (f *fakeTrainer) promoted() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.promotes
}

func (f *fakeTrainer) ran() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.windows
}

var errTrainBoom = errors.New("continual test: trainer boom")

// fakeClock is a manually-advanced time source for cooldown tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func crossedEval(version, seq int) monitor.Evaluation {
	return monitor.Evaluation{Seq: seq, TeedAt: uint64(seq) * 100, Score: 5, Crossed: true, SnapshotVersion: version}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// memorySample returns copies of the checkpoint's expert memories — live
// embeddings the frozen snapshot matches at distance 0.
func memorySample(cp *service.Checkpoint, n int) []tensor.Vector {
	var out []tensor.Vector
	for len(out) < n {
		for _, e := range cp.Aggregator.Experts {
			if e.Memory != nil {
				out = append(out, e.Memory.Clone())
			}
		}
	}
	return out[:n]
}

func TestControllerHysteresisThenSwap(t *testing.T) {
	cp, servingSnap := loadTiny(t)
	candSnap, err := serve.SnapshotFromCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	src := &fakeSource{ch: make(chan monitor.Evaluation, 16), sk: &monitor.Sketches{Recent: memorySample(cp, 4)}}
	tgt := &fakeTarget{snap: servingSnap}
	tr := &fakeTrainer{cand: &Candidate{Snapshot: candSnap, Report: &shiftex.WindowReport{Window: 3, NewExperts: 1, ExpertsAfter: 5}}}
	ctrl, err := New(src, tgt, tr, Config{Hysteresis: 2, Cooldown: time.Hour, Validation: ValidationConfig{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	defer ctrl.Close()

	// One crossed evaluation is noise, not a trigger.
	src.ch <- crossedEval(1, 1)
	waitFor(t, "first eval folded", func() bool { return ctrl.ContinualState().ConsecutiveCrossed == 1 })
	if st := ctrl.ContinualState(); st.Triggers != 0 || st.Phase != PhaseIdle {
		t.Fatalf("single crossing triggered: %+v", st)
	}

	// The second consecutive crossing arms the window.
	src.ch <- crossedEval(1, 2)
	waitFor(t, "window to complete", func() bool { return ctrl.ContinualState().WindowsCompleted == 1 })
	st := ctrl.ContinualState()
	if st.Triggers != 1 || st.Phase != PhaseCooldown {
		t.Fatalf("post-window state: %+v", st)
	}
	if st.LastTrigger == nil || st.LastTrigger.Seq != 2 {
		t.Fatalf("trigger record wrong: %+v", st.LastTrigger)
	}
	if st.LastWindow == nil || st.LastWindow.Outcome != OutcomeSwapped || st.LastWindow.SwappedVersion != 2 {
		t.Fatalf("window record wrong: %+v", st.LastWindow)
	}
	if st.LastWindow.NewExperts != 1 || st.LastWindow.ExpertsAfter != 5 {
		t.Fatalf("window report not carried: %+v", st.LastWindow)
	}
	if st.CooldownRemainingSeconds <= 0 {
		t.Fatalf("cooldown remaining %.1fs, want positive", st.CooldownRemainingSeconds)
	}
	if tgt.swapCount() != 1 || tgt.Snapshot() != candSnap || tgt.Snapshot().Version != 2 {
		t.Fatalf("candidate not swapped in (swaps=%d version=%d)", tgt.swapCount(), tgt.Snapshot().Version)
	}
	if tr.promoted() != 1 {
		t.Fatalf("promote calls %d, want 1", tr.promoted())
	}
}

func TestControllerResetsOnUncrossedAndStaleEvals(t *testing.T) {
	cp, servingSnap := loadTiny(t)
	src := &fakeSource{ch: make(chan monitor.Evaluation, 16), sk: &monitor.Sketches{Recent: memorySample(cp, 4)}}
	tgt := &fakeTarget{snap: servingSnap}
	tr := &fakeTrainer{cand: &Candidate{Snapshot: servingSnap, Report: &shiftex.WindowReport{}}}
	ctrl, err := New(src, tgt, tr, Config{Hysteresis: 2, Cooldown: time.Hour, Validation: ValidationConfig{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	defer ctrl.Close()

	// crossed / uncrossed / crossed: the gap resets the streak.
	src.ch <- crossedEval(1, 1)
	src.ch <- monitor.Evaluation{Seq: 2, Score: 0.1, SnapshotVersion: 1}
	src.ch <- crossedEval(1, 3)
	waitFor(t, "streak rebuilt", func() bool { return ctrl.ContinualState().ConsecutiveCrossed == 1 })
	if st := ctrl.ContinualState(); st.Triggers != 0 {
		t.Fatalf("non-consecutive crossings triggered: %+v", st)
	}

	// Evaluations scored against a retired snapshot version never count.
	for seq := 10; seq < 15; seq++ {
		src.ch <- crossedEval(99, seq)
	}
	waitFor(t, "stale evals drained", func() bool { return ctrl.ContinualState().ConsecutiveCrossed == 0 })
	if st := ctrl.ContinualState(); st.Triggers != 0 || st.WindowsCompleted != 0 {
		t.Fatalf("stale-version evaluations triggered: %+v", st)
	}
}

func TestControllerRollsBackOnTrainerError(t *testing.T) {
	cp, servingSnap := loadTiny(t)
	src := &fakeSource{ch: make(chan monitor.Evaluation, 16), sk: &monitor.Sketches{Recent: memorySample(cp, 4)}}
	tgt := &fakeTarget{snap: servingSnap}
	tr := &fakeTrainer{err: errTrainBoom}
	ctrl, err := New(src, tgt, tr, Config{Hysteresis: 1, Cooldown: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	defer ctrl.Close()

	src.ch <- crossedEval(1, 1)
	waitFor(t, "rollback recorded", func() bool { return ctrl.ContinualState().WindowsRolledBack == 1 })
	st := ctrl.ContinualState()
	if st.WindowsCompleted != 0 || tgt.swapCount() != 0 || tr.promoted() != 0 {
		t.Fatalf("failed window leaked into serving: %+v swaps=%d", st, tgt.swapCount())
	}
	if tgt.Snapshot() != servingSnap {
		t.Fatal("serving snapshot pointer changed on a rolled-back window")
	}
	if st.LastWindow == nil || st.LastWindow.Outcome != OutcomeRolledBack || !strings.Contains(st.LastWindow.Error, "boom") {
		t.Fatalf("window record wrong: %+v", st.LastWindow)
	}
	if st.Phase != PhaseCooldown {
		t.Fatalf("failed window must still cool down, phase %q", st.Phase)
	}
}

func TestControllerRollsBackWithoutSketches(t *testing.T) {
	_, servingSnap := loadTiny(t)
	src := &fakeSource{ch: make(chan monitor.Evaluation, 16)} // Sketches() returns nil
	tgt := &fakeTarget{snap: servingSnap}
	tr := &fakeTrainer{}
	ctrl, err := New(src, tgt, tr, Config{Hysteresis: 1, Cooldown: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	defer ctrl.Close()

	src.ch <- crossedEval(1, 1)
	waitFor(t, "rollback recorded", func() bool { return ctrl.ContinualState().WindowsRolledBack == 1 })
	if tr.ran() != 0 {
		t.Fatal("trainer ran without sketches")
	}
	if tgt.swapCount() != 0 {
		t.Fatal("swap happened without sketches")
	}
}

func TestControllerValidationRejectsRegressingCandidate(t *testing.T) {
	cp, servingSnap := loadTiny(t)

	// A candidate whose memories moved far from live traffic: every held-back
	// embedding matches the serving snapshot (distance 0) and misses the
	// candidate, so the gate must reject it.
	st := cp.Aggregator
	st.Experts = append([]shiftex.ExpertState(nil), st.Experts...)
	for i := range st.Experts {
		if st.Experts[i].Memory == nil {
			continue
		}
		m := st.Experts[i].Memory.Clone()
		for j := range m {
			m[j] += 1e3
		}
		st.Experts[i].Memory = m
	}
	badSnap, err := serve.NewSnapshot(cp.Arch, st)
	if err != nil {
		t.Fatal(err)
	}

	src := &fakeSource{ch: make(chan monitor.Evaluation, 16), sk: &monitor.Sketches{Recent: memorySample(cp, 40)}}
	tgt := &fakeTarget{snap: servingSnap}
	tr := &fakeTrainer{cand: &Candidate{Snapshot: badSnap, Report: &shiftex.WindowReport{}}}
	ctrl, err := New(src, tgt, tr, Config{Hysteresis: 1, Cooldown: time.Hour, Validation: ValidationConfig{MinSamples: 8}})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	defer ctrl.Close()

	src.ch <- crossedEval(1, 1)
	waitFor(t, "rejection recorded", func() bool { return ctrl.ContinualState().WindowsRejected == 1 })
	st2 := ctrl.ContinualState()
	if tgt.swapCount() != 0 || tr.promoted() != 0 {
		t.Fatal("rejected candidate reached serving")
	}
	w := st2.LastWindow
	if w == nil || w.Outcome != OutcomeRejected || w.Validation == nil {
		t.Fatalf("window record wrong: %+v", w)
	}
	if w.Validation.BaselineMatched <= w.Validation.CandidateMatched {
		t.Fatalf("validation numbers nonsensical: %+v", w.Validation)
	}
}

func TestControllerCooldownSuppressesThenRearms(t *testing.T) {
	cp, servingSnap := loadTiny(t)
	candSnap, err := serve.SnapshotFromCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	clock := &fakeClock{t: time.Unix(1_000_000, 0)}
	src := &fakeSource{ch: make(chan monitor.Evaluation, 16), sk: &monitor.Sketches{Recent: memorySample(cp, 4)}}
	tgt := &fakeTarget{snap: servingSnap}
	tr := &fakeTrainer{cand: &Candidate{Snapshot: candSnap, Report: &shiftex.WindowReport{}}}
	ctrl, err := New(src, tgt, tr, Config{
		Hysteresis: 1, Cooldown: time.Hour, Now: clock.Now,
		Validation: ValidationConfig{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	defer ctrl.Close()

	src.ch <- crossedEval(1, 1)
	waitFor(t, "first window", func() bool { return ctrl.ContinualState().WindowsCompleted == 1 })

	// A crossing inside the refractory period is suppressed, not trained on.
	src.ch <- crossedEval(2, 2)
	waitFor(t, "suppression", func() bool { return ctrl.ContinualState().TriggersSuppressed == 1 })
	if st := ctrl.ContinualState(); st.WindowsCompleted != 1 || st.Phase != PhaseCooldown {
		t.Fatalf("cooldown did not hold: %+v", st)
	}

	// Past the cooldown the controller re-arms.
	clock.Advance(2 * time.Hour)
	src.ch <- crossedEval(2, 3)
	waitFor(t, "second window", func() bool { return ctrl.ContinualState().WindowsCompleted == 2 })
	if tgt.Snapshot().Version != 3 {
		t.Fatalf("second swap did not advance the version: %d", tgt.Snapshot().Version)
	}
}

func TestControllerCoalescesTriggersDuringWindow(t *testing.T) {
	cp, servingSnap := loadTiny(t)
	candSnap, err := serve.SnapshotFromCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	src := &fakeSource{ch: make(chan monitor.Evaluation, 16), sk: &monitor.Sketches{Recent: memorySample(cp, 4)}}
	tgt := &fakeTarget{snap: servingSnap}
	tr := &fakeTrainer{cand: &Candidate{Snapshot: candSnap, Report: &shiftex.WindowReport{}}, block: block}
	ctrl, err := New(src, tgt, tr, Config{Hysteresis: 1, Cooldown: time.Hour, Validation: ValidationConfig{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	defer ctrl.Close()

	src.ch <- crossedEval(1, 1)
	waitFor(t, "window in flight", func() bool { return ctrl.ContinualState().Phase == PhaseAdapting })

	// Triggers arriving while the window runs coalesce into it.
	src.ch <- crossedEval(1, 2)
	src.ch <- crossedEval(1, 3)
	close(block)
	waitFor(t, "window done", func() bool { return ctrl.ContinualState().WindowsCompleted == 1 })
	waitFor(t, "coalesced drained", func() bool { return ctrl.ContinualState().TriggersSuppressed == 2 })
	if st := ctrl.ContinualState(); st.Triggers != 1 || tgt.swapCount() != 1 {
		t.Fatalf("coalesced triggers started extra windows: %+v swaps=%d", st, tgt.swapCount())
	}
}
