package continual

import (
	"math"
	"testing"

	"repro/internal/shiftex"
	"repro/internal/tensor"
)

func TestLiveRadiiCalibration(t *testing.T) {
	prev := shiftex.State{Experts: []shiftex.ExpertState{{ID: 0, Memory: tensor.Vector{0, 0}}}}
	next := shiftex.State{Experts: []shiftex.ExpertState{
		{ID: 0, Memory: tensor.Vector{0, 0}},
		{ID: 5, Memory: tensor.Vector{10, 0}},
	}}
	// Live sample at increasing distance from the new expert's memory; the
	// old expert must attract none of it (radii are only for new experts).
	var recent []tensor.Vector
	for i := 1; i <= 20; i++ {
		recent = append(recent, tensor.Vector{10, float64(i)})
	}

	radii := liveRadii(next, prev, recent, 0.95)
	if len(radii) != 1 {
		t.Fatalf("radii for %d experts, want exactly the new one: %v", len(radii), radii)
	}
	r, ok := radii[5]
	if !ok {
		t.Fatalf("no radius for window-created expert 5: %v", radii)
	}
	// Squared distances are 1..400; the 0.95 quantile of the sorted sample
	// (index 18 of 20) is 19² = 361.
	if math.Abs(r-361) > 1e-9 {
		t.Fatalf("radius %.1f, want 361 (0.95 quantile of squared distances)", r)
	}

	if got := liveRadii(prev, prev, recent, 0.95); got != nil {
		t.Fatalf("no new experts must yield no radii: %v", got)
	}
	if got := liveRadii(next, prev, nil, 0.95); got != nil {
		t.Fatalf("empty live sample must yield no radii: %v", got)
	}
}

func TestMergeRadiiOverlaysWithoutMutation(t *testing.T) {
	a := map[int]float64{1: 2, 2: 3}
	b := map[int]float64{2: 7, 3: 9}
	out := mergeRadii(a, b)
	if out[1] != 2 || out[2] != 7 || out[3] != 9 {
		t.Fatalf("merge wrong: %v", out)
	}
	if a[2] != 3 {
		t.Fatal("merge mutated its input")
	}
	if mergeRadii(nil, nil) != nil {
		t.Fatal("empty merge must stay nil")
	}
}
