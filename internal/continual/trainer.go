package continual

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/adapt"
	"repro/internal/dataset"
	"repro/internal/federation"
	"repro/internal/monitor"
	"repro/internal/serve"
	"repro/internal/service"
	"repro/internal/shiftex"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// TrainerConfig tunes the serve-local trainer.
type TrainerConfig struct {
	// SamplesPerParty / TestPerParty reproduce the training run's scenario
	// shape — the checkpoint pins seed and windows but not data shape;
	// defaults match cmd/shiftex-aggregator's (120/60).
	SamplesPerParty int
	TestPerParty    int
	// Stats tunes the sketch → PartyStats synthesis.
	Stats StatsOptions
	// LiveRadiusQuantile sets how much of the triggering live sample a
	// window-created expert must accept: its acceptance radius is this
	// quantile of the sample's squared distances to the expert's memory.
	// The checkpoint's route radius is calibrated on window-mean
	// signatures, whose spread is far tighter than single-request
	// embeddings — without a per-request-scale radius the live expert's
	// centroid memory would never match the very traffic it was built
	// for. Default 0.95.
	LiveRadiusQuantile float64
}

func (c TrainerConfig) withDefaults() TrainerConfig {
	if c.SamplesPerParty <= 0 {
		c.SamplesPerParty = 120
	}
	if c.TestPerParty <= 0 {
		c.TestPerParty = 60
	}
	if c.LiveRadiusQuantile <= 0 || c.LiveRadiusQuantile > 1 {
		c.LiveRadiusQuantile = 0.95
	}
	return c
}

// LocalTrainer runs adaptation windows in-process (serve-local mode): it
// regenerates the checkpoint run's party fleet from the pinned seed, restores
// the aggregator from the checkpoint state, and drives shiftex.AdaptWindow
// with the live sketches standing in for the party statistics fan-out —
// detection and expert placement come from production traffic, while the
// federated training rounds run against the regenerated party data. After a
// promoted window, the next window stacks on the adapted state, so repeated
// regime changes accumulate experts exactly as the offline pipeline would.
//
// The trainer is not safe for concurrent use; the controller's run loop is
// its only caller (one window in flight by construction).
type LocalTrainer struct {
	cp     *service.Checkpoint
	cfg    TrainerConfig
	fed    *federation.Federation
	policy *adapt.Policy
	widx   int // scenario window the fleet trains against (last adapted)

	st          shiftex.State // current aggregator state; advances on Promote
	liveWindows int           // promoted live windows since the checkpoint
	// radii carries the calibrated acceptance radius of every promoted
	// live-created expert (expert ID → squared-distance radius). Radii are
	// a serving-layer overlay, not part of shiftex.State — they are stamped
	// onto each candidate snapshot and re-merged on Promote, and are lost
	// on a daemon restart (the next live window recalibrates them).
	radii map[int]float64
}

var _ Trainer = (*LocalTrainer)(nil)

// NewLocalTrainer builds the serve-local trainer for a checkpoint: the
// scenario and federation are regenerated once and reused across windows.
func NewLocalTrainer(cp *service.Checkpoint, cfg TrainerConfig) (*LocalTrainer, error) {
	if cp == nil {
		return nil, errors.New("continual: nil checkpoint")
	}
	cfg = cfg.withDefaults()
	parties := len(cp.Aggregator.Assignment)
	if parties == 0 {
		return nil, errors.New("continual: checkpoint has no party assignments")
	}
	spec := service.ScenarioSpec(parties, cfg.SamplesPerParty, cfg.TestPerParty, cp.NumWindows)
	sc, err := dataset.BuildScenario(spec, dataset.DefaultShiftConfig(), cp.Seed)
	if err != nil {
		return nil, fmt.Errorf("continual: regenerate scenario: %w", err)
	}
	fed, err := federation.New(sc, cp.Arch, cp.Seed)
	if err != nil {
		return nil, fmt.Errorf("continual: rebuild federation: %w", err)
	}
	policy, err := adapt.NewPolicy(cp.PolicyName())
	if err != nil {
		return nil, fmt.Errorf("continual: resolve policy: %w", err)
	}
	widx := cp.WindowsDone - 1
	if widx >= len(sc.Windows) {
		widx = len(sc.Windows) - 1
	}
	if widx < 0 {
		widx = 0
	}
	return &LocalTrainer{
		cp:     cp,
		cfg:    cfg,
		fed:    fed,
		policy: policy,
		widx:   widx,
		st:     cp.Aggregator,
	}, nil
}

// AdaptWindow implements Trainer: one full detect → calibrate → assign →
// train → consolidate pass over the live sketches. The aggregator is
// restored fresh from the current state each call, so a failed window leaves
// no residue (shiftex's own atomic-window rollback covers mid-pipeline
// errors inside the call).
func (lt *LocalTrainer) AdaptWindow(sk *monitor.Sketches) (*Candidate, error) {
	agg, err := shiftex.RestoreWithPolicy(lt.cp.Config, lt.policy, lt.st)
	if err != nil {
		return nil, fmt.Errorf("continual: restore aggregator: %w", err)
	}
	// AdaptWindow expects the caller to have positioned the fleet; the live
	// window trains against the last adapted scenario window — the freshest
	// party data the pinned seed can regenerate.
	if err := lt.fed.SetWindow(lt.widx); err != nil {
		return nil, fmt.Errorf("continual: position fleet: %w", err)
	}
	label := lt.cp.WindowsDone + lt.liveWindows
	pstats, err := BuildPartyStats(sk, lt.st.Assignment, lt.fed.PartyHists(), label, lt.cfg.Stats)
	if err != nil {
		return nil, err
	}
	fleet := &shiftex.LiveStatsFleet{Fleet: lt.fed, Stats: pstats}
	rep, err := agg.AdaptWindow(fleet, label)
	if err != nil {
		return nil, fmt.Errorf("continual: adaptation window: %w", err)
	}
	state := agg.ExportState()
	snap, err := serve.NewSnapshot(lt.cp.Arch, state)
	if err != nil {
		return nil, fmt.Errorf("continual: build candidate snapshot: %w", err)
	}
	snap.WindowsDone = lt.cp.WindowsDone
	snap.Seed = lt.cp.Seed
	snap.Policy = lt.cp.PolicyName()

	// Calibrate acceptance radii for the experts this window created from
	// the very sample that triggered it, then stamp every known radius onto
	// the candidate — the overlay must survive across snapshots or a later
	// window's swap would silently strand earlier live experts.
	radii := mergeRadii(lt.radii, liveRadii(state, lt.st, sk.Recent, lt.cfg.LiveRadiusQuantile))
	for id, r := range radii {
		snap.SetExpertRadius(id, r)
	}
	return &Candidate{Snapshot: snap, Report: rep, State: state, Radii: radii}, nil
}

// liveRadii calibrates an acceptance radius for each expert present in next
// but not prev: every live embedding is attributed to its nearest new
// expert's memory, and that expert's radius is the q-quantile of its
// attributed squared distances. Experts that attract no embeddings get no
// radius (they fall back to the shared route radius).
func liveRadii(next shiftex.State, prev shiftex.State, recent []tensor.Vector, q float64) map[int]float64 {
	old := make(map[int]bool, len(prev.Experts))
	for _, e := range prev.Experts {
		old[e.ID] = true
	}
	type newExpert struct {
		id  int
		mem tensor.Vector
	}
	var created []newExpert
	for _, e := range next.Experts {
		if !old[e.ID] && e.Memory != nil {
			created = append(created, newExpert{e.ID, e.Memory})
		}
	}
	if len(created) == 0 || len(recent) == 0 {
		return nil
	}
	dists := make(map[int][]float64, len(created))
	for _, emb := range recent {
		bestID, bestD := -1, math.Inf(1)
		for _, ne := range created {
			if d := stats.MeanEmbeddingMMD(emb, ne.mem); d < bestD {
				bestID, bestD = ne.id, d
			}
		}
		if bestID >= 0 {
			dists[bestID] = append(dists[bestID], bestD)
		}
	}
	out := make(map[int]float64, len(dists))
	for id, ds := range dists {
		sort.Float64s(ds)
		out[id] = ds[int(q*float64(len(ds)-1))]
	}
	return out
}

// mergeRadii overlays b onto a copy of a without mutating either.
func mergeRadii(a, b map[int]float64) map[int]float64 {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make(map[int]float64, len(a)+len(b))
	for id, r := range a {
		out[id] = r
	}
	for id, r := range b {
		out[id] = r
	}
	return out
}

// Promote implements Trainer: a swapped candidate's state becomes the next
// window's starting point, and its radius overlay the next window's base.
func (lt *LocalTrainer) Promote(c *Candidate) {
	lt.st = c.State
	lt.radii = c.Radii
	lt.liveWindows++
}
