package continual

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/detect"
	"repro/internal/monitor"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// StatsOptions tunes the sketch → PartyStats synthesis.
type StatsOptions struct {
	// MinExpertSamples is the minimum number of recent-window embeddings
	// routed to a party's assigned expert before the party's statistics are
	// attributed per-expert; below it the global recent window stands in
	// (default 8). The global fallback matters: after a regime change most
	// traffic stops matching and lands on the fallback expert, so the
	// assigned experts' own sketches barely move — the shift lives in the
	// global window.
	MinExpertSamples int
	// SampleCap bounds each party's embedding sample, newest kept (default
	// 64 — the same cap the training-time detector applies).
	SampleCap int
}

func (o StatsOptions) withDefaults() StatsOptions {
	if o.MinExpertSamples <= 0 {
		o.MinExpertSamples = 8
	}
	if o.SampleCap <= 0 {
		o.SampleCap = 64
	}
	return o
}

// BuildPartyStats synthesizes the per-party Algorithm-1 statistics an
// adaptation window consumes from the monitor's live sketches — the bridge
// that lets production traffic stand in for a party fan-out.
//
// Scale compatibility is the load-bearing constraint: the checkpoint's
// covariate threshold (DeltaCov) was calibrated at bootstrap from split-half
// *kernel* MMD resamples, so the live MMD must be the same statistic on the
// same embedding space — kernel MMD between the party's live sample and the
// monitor's frozen no-shift baseline reservoir. Squared mean distance (the
// monitor's own cheap score) lives on a different scale and would never
// cross.
//
// Label shift is unobservable at serving time (requests carry no labels), so
// JSD is zero and LabelHist echoes each party's training histogram: the
// label-shift detector simply never fires on a live window.
func BuildPartyStats(sk *monitor.Sketches, assignment map[int]int, hists []stats.Histogram, window int, opts StatsOptions) ([]detect.PartyStats, error) {
	opts = opts.withDefaults()
	if sk == nil || len(sk.Recent) == 0 {
		return nil, errors.New("continual: sketches carry no recent embeddings")
	}
	if len(sk.Baseline) == 0 {
		return nil, errors.New("continual: sketches carry no baseline reservoir (monitor not calibrated?)")
	}
	if len(assignment) == 0 {
		return nil, errors.New("continual: no party assignment to attribute traffic by")
	}

	parties := make([]int, 0, len(assignment))
	for p := range assignment {
		parties = append(parties, p)
	}
	sort.Ints(parties)

	global := capNewest(sk.Recent, opts.SampleCap)
	globalMean, err := tensor.Mean(global)
	if err != nil {
		return nil, fmt.Errorf("continual: global recent mean: %w", err)
	}
	globalMMD, err := stats.MMDAuto(global, sk.Baseline)
	if err != nil {
		return nil, fmt.Errorf("continual: global live MMD: %w", err)
	}

	out := make([]detect.PartyStats, 0, len(parties))
	for _, p := range parties {
		sample, mean, mmd := global, globalMean, globalMMD
		if own := sk.RecentForExpert(assignment[p]); len(own) >= opts.MinExpertSamples {
			own = capNewest(own, opts.SampleCap)
			m, err := tensor.Mean(own)
			if err != nil {
				return nil, fmt.Errorf("continual: party %d recent mean: %w", p, err)
			}
			d, err := stats.MMDAuto(own, sk.Baseline)
			if err != nil {
				return nil, fmt.Errorf("continual: party %d live MMD: %w", p, err)
			}
			sample, mean, mmd = own, m, d
		}
		st := detect.PartyStats{
			PartyID:         p,
			Window:          window,
			MeanEmbedding:   mean,
			EmbeddingSample: sample,
			MMD:             mmd,
			NumSamples:      len(sample),
		}
		if p < len(hists) {
			st.LabelHist = hists[p]
		}
		out = append(out, st)
	}
	return out, nil
}

// capNewest keeps the newest n entries of a chronologically ordered slice.
func capNewest(s []tensor.Vector, n int) []tensor.Vector {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}
