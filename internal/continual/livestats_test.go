package continual

import (
	"testing"

	"repro/internal/monitor"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// sketchFixture builds a sketch export where expert 1's traffic sits at
// shifted (high) coordinates while everything else matches the clean
// baseline around 0.
func sketchFixture(dim, baseline, perExpert int) *monitor.Sketches {
	rng := tensor.NewRNG(11)
	vec := func(mean float64) tensor.Vector {
		v := make(tensor.Vector, dim)
		for i := range v {
			v[i] = rng.Norm()*0.1 + mean
		}
		return v
	}
	sk := &monitor.Sketches{}
	for i := 0; i < baseline; i++ {
		sk.Baseline = append(sk.Baseline, vec(0))
	}
	for i := 0; i < perExpert; i++ {
		sk.Recent = append(sk.Recent, vec(0))
		sk.RecentExperts = append(sk.RecentExperts, 0)
		sk.Recent = append(sk.Recent, vec(6))
		sk.RecentExperts = append(sk.RecentExperts, 1)
	}
	return sk
}

func TestBuildPartyStatsAttributesPerExpert(t *testing.T) {
	sk := sketchFixture(4, 32, 16)
	assignment := map[int]int{0: 0, 1: 1, 2: 7} // party 2's expert saw no traffic
	hists := []stats.Histogram{{1, 0}, {0, 1}, {0.5, 0.5}}

	ps, err := BuildPartyStats(sk, assignment, hists, 9, StatsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("got %d party stats, want 3", len(ps))
	}
	byParty := map[int]int{}
	for i, p := range ps {
		byParty[p.PartyID] = i
		if p.Window != 9 {
			t.Fatalf("party %d window %d, want 9", p.PartyID, p.Window)
		}
		if p.NumSamples != len(p.EmbeddingSample) || p.NumSamples == 0 {
			t.Fatalf("party %d sample bookkeeping broken: %d vs %d", p.PartyID, p.NumSamples, len(p.EmbeddingSample))
		}
		if p.JSD != 0 {
			t.Fatalf("live windows cannot observe label shift, JSD %g", p.JSD)
		}
	}

	// Party 0's expert served clean traffic: tiny MMD against the baseline.
	// Party 1's expert served shifted traffic: MMD far larger.
	clean := ps[byParty[0]]
	shifted := ps[byParty[1]]
	if clean.MMD >= shifted.MMD {
		t.Fatalf("per-expert attribution lost the shift: clean MMD %.4f vs shifted %.4f", clean.MMD, shifted.MMD)
	}
	if shifted.MeanEmbedding[0] < 3 {
		t.Fatalf("shifted party mean %.2f not near the shifted regime", shifted.MeanEmbedding[0])
	}

	// Party 2's expert saw no traffic, so it inherits the global window —
	// a mix of both regimes, mean strictly between them.
	global := ps[byParty[2]]
	if global.MeanEmbedding[0] < 1 || global.MeanEmbedding[0] > 5 {
		t.Fatalf("global fallback mean %.2f not a clean/shifted mix", global.MeanEmbedding[0])
	}
	if global.LabelHist == nil || global.LabelHist[0] != 0.5 {
		t.Fatalf("label hist not propagated: %v", global.LabelHist)
	}
}

func TestBuildPartyStatsCapsAndErrors(t *testing.T) {
	sk := sketchFixture(4, 32, 100)
	ps, err := BuildPartyStats(sk, map[int]int{0: 0}, nil, 1, StatsOptions{SampleCap: 10})
	if err != nil {
		t.Fatal(err)
	}
	if ps[0].NumSamples != 10 {
		t.Fatalf("sample cap not applied: %d", ps[0].NumSamples)
	}

	if _, err := BuildPartyStats(nil, map[int]int{0: 0}, nil, 1, StatsOptions{}); err == nil {
		t.Fatal("nil sketches must error")
	}
	if _, err := BuildPartyStats(&monitor.Sketches{Recent: sk.Recent}, map[int]int{0: 0}, nil, 1, StatsOptions{}); err == nil {
		t.Fatal("missing baseline must error")
	}
	if _, err := BuildPartyStats(sk, nil, nil, 1, StatsOptions{}); err == nil {
		t.Fatal("empty assignment must error")
	}
}
