package continual

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/monitor"
	"repro/internal/serve"
	"repro/internal/service"
	"repro/internal/tensor"
)

// BenchConfig tunes the closed-loop adaptation benchmark.
type BenchConfig struct {
	// SamplesPerParty / TestPerParty reproduce the checkpoint run's scenario
	// shape (defaults 120/60).
	SamplesPerParty int
	TestPerParty    int
	// Concurrency is the number of open-loop client goroutines driving the
	// closed-loop phase (default: 2 per core).
	Concurrency int
	// Corruption is the covariate shift injected mid-stream (identity
	// selects frost/5, fully deterministic per input).
	Corruption dataset.Corruption
	// Monitor tunes the drift monitor (zero values = package defaults).
	Monitor monitor.Config
	// Controller tunes the adaptation controller (zero values = package
	// defaults). The cooldown should exceed the post-swap evaluation pass
	// (sub-second) so a second window cannot reshuffle assignments while
	// recovery is being scored.
	Controller Config
	// Serve tunes the serving pipeline. The route cache is force-disabled
	// (every request must tee into the monitor) and the benchmark owns the
	// Monitor field.
	Serve serve.Config
	// Trainer tunes the serve-local trainer's statistics synthesis.
	Stats StatsOptions
	// CalibrationTimeout bounds the clean-traffic warmup waiting for the
	// monitor's δ calibration (default 60s); AdaptTimeout bounds the
	// shifted-traffic phase waiting for the loop to close — detection,
	// window, validation, swap (default 120s).
	CalibrationTimeout time.Duration
	AdaptTimeout       time.Duration
}

func (c BenchConfig) withDefaults() BenchConfig {
	if c.SamplesPerParty <= 0 {
		c.SamplesPerParty = 120
	}
	if c.TestPerParty <= 0 {
		c.TestPerParty = 60
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 2 * runtime.GOMAXPROCS(0)
	}
	if c.Corruption.IsIdentity() {
		c.Corruption = dataset.Corruption{Kind: dataset.CorruptFrost, Severity: 5}
	}
	if c.CalibrationTimeout <= 0 {
		c.CalibrationTimeout = 60 * time.Second
	}
	if c.AdaptTimeout <= 0 {
		c.AdaptTimeout = 120 * time.Second
	}
	return c
}

// evalTally scores one deterministic evaluation pass.
type evalTally struct {
	requests int
	correct  int
	known    int
	routed   int
	errs     uint64
}

func (t evalTally) accuracy() float64 {
	if t.requests == 0 {
		return 0
	}
	return float64(t.correct) / float64(t.requests)
}

func (t evalTally) routing() float64 {
	if t.known == 0 {
		return 0
	}
	return float64(t.routed) / float64(t.known)
}

// evalStream replays the items once against srv and scores accuracy and
// routed-to-assigned, with the assigned expert resolved per item by the
// caller (checkpoint assignment for the frozen pass, post-window assignment
// for the adapted pass).
func evalStream(ctx context.Context, srv *serve.Server, items []serve.WorkItem, assigned func(serve.WorkItem) int) evalTally {
	var t evalTally
	for _, it := range items {
		if ctx.Err() != nil {
			break
		}
		res, err := srv.Predict(context.Background(), it.X)
		if err != nil {
			t.errs++
			continue
		}
		t.requests++
		if res.Class == it.Y {
			t.correct++
		}
		if id := assigned(it); id >= 0 {
			t.known++
			if res.Expert == id {
				t.routed++
			}
		}
	}
	return t
}

// shiftItems pre-transforms the stream's shifted replica with the same
// deterministic derivation the serve load generator uses, so the injected
// regime is identical across the frozen, closed-loop, and post-swap passes.
func shiftItems(items []serve.WorkItem, corr dataset.Corruption, seed uint64) []serve.WorkItem {
	rng := tensor.NewRNG(seed ^ 0xd21f7)
	regime := "shifted:" + corr.String()
	out := make([]serve.WorkItem, len(items))
	for i, it := range items {
		it.X = corr.Apply(it.X, rng)
		it.Regime = regime
		out[i] = it
	}
	return out
}

// RunAdaptLiveBench runs the closed-loop continual adaptation benchmark in
// three passes:
//
//  1. Frozen baseline: the shifted stream is scored against a plain server on
//     the checkpoint snapshot — how the system serves the new regime when
//     nothing adapts.
//  2. Closed loop: a monitored server with the controller armed takes clean
//     traffic until the monitor calibrates, then the stream flips to the
//     shifted regime and open-loop clients keep driving until the loop closes
//     — drift detected, adaptation window run against the live sketches,
//     candidate validated, snapshot hot-swapped — or the timeout expires.
//  3. Recovery: the same shifted stream is scored against the now-adapted
//     server, routed-to-assigned measured against the post-window assignment.
//
// The returned artifact records all three; CheckAdaptLive is the CI gate.
func RunAdaptLiveBench(ctx context.Context, cp *service.Checkpoint, cfg BenchConfig) (*experiments.AdaptLiveArtifact, error) {
	cfg = cfg.withDefaults()
	lcfg := serve.LoadConfig{SamplesPerParty: cfg.SamplesPerParty, TestPerParty: cfg.TestPerParty}
	items, err := serve.Workload(cp, lcfg)
	if err != nil {
		return nil, err
	}
	shifted := shiftItems(items, cfg.Corruption, cp.Seed)

	srvCfg := cfg.Serve
	srvCfg.CacheSize = -1 // full tee coverage: every request routes cold
	srvCfg.Monitor = nil

	// Pass 1: frozen baseline on the shifted stream.
	snapA, err := serve.SnapshotFromCheckpoint(cp)
	if err != nil {
		return nil, err
	}
	srvA, err := serve.NewServer(snapA, srvCfg)
	if err != nil {
		return nil, err
	}
	frozen := evalStream(ctx, srvA, shifted, func(it serve.WorkItem) int { return it.Assigned })
	if err := srvA.Close(); err != nil {
		return nil, err
	}
	if frozen.errs > 0 {
		return nil, fmt.Errorf("continual: frozen evaluation pass errored %d times", frozen.errs)
	}

	// Pass 2: the closed loop.
	mon := monitor.New(cfg.Monitor)
	defer mon.Close()
	snapB, err := serve.SnapshotFromCheckpoint(cp)
	if err != nil {
		return nil, err
	}
	liveCfg := srvCfg
	liveCfg.Monitor = mon
	srv, err := serve.NewServer(snapB, liveCfg)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	trainer, err := NewLocalTrainer(cp, TrainerConfig{
		SamplesPerParty: cfg.SamplesPerParty,
		TestPerParty:    cfg.TestPerParty,
		Stats:           cfg.Stats,
	})
	if err != nil {
		return nil, err
	}
	ctrl, err := New(mon, srv, trainer, cfg.Controller)
	if err != nil {
		return nil, err
	}
	srv.AttachAdaptation(ctrl)
	ctrl.Start()
	defer ctrl.Close()

	var (
		stopDrive atomic.Bool
		shiftOn   atomic.Bool
		requests  atomic.Uint64
		errsN     atomic.Uint64
		rejected  atomic.Uint64
		wg        sync.WaitGroup
	)
	driveStart := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reqCtx := context.Background()
			for i := 0; !stopDrive.Load() && ctx.Err() == nil; i++ {
				set := items
				if shiftOn.Load() {
					set = shifted
				}
				_, err := srv.Predict(reqCtx, set[i%len(set)].X)
				switch {
				case errors.Is(err, serve.ErrOverloaded):
					rejected.Add(1)
				case err != nil:
					errsN.Add(1)
				default:
					requests.Add(1)
				}
			}
		}()
	}
	stop := func() {
		stopDrive.Store(true)
		wg.Wait()
	}

	// Clean warmup until the monitor has calibrated δ.
	calDeadline := time.Now().Add(cfg.CalibrationTimeout)
	for !mon.Summary().Calibrated {
		if ctx.Err() != nil || time.Now().After(calDeadline) {
			stop()
			return nil, errors.New("continual: monitor never calibrated under clean traffic (raise the calibration timeout or shrink the baseline)")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Inject the shift and wait for the loop to close.
	fromVersion := srv.Snapshot().Version
	shiftTeed := mon.Teed()
	shiftWall := time.Now()
	shiftOn.Store(true)

	adaptDeadline := shiftWall.Add(cfg.AdaptTimeout)
	var adaptLatency time.Duration
	closed := false
	for !closed {
		if ctx.Err() != nil || time.Now().After(adaptDeadline) {
			break
		}
		if st := ctrl.ContinualState(); st.WindowsCompleted >= 1 {
			adaptLatency = time.Since(shiftWall)
			closed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop()
	driveDur := time.Since(driveStart)

	// Pass 3: recovery on the adapted snapshot. Runs inside the controller's
	// cooldown, so the assignment being scored cannot shift underneath it.
	adapted := srv.Snapshot()
	post := evalStream(ctx, srv, shifted, func(it serve.WorkItem) int {
		if id, ok := adapted.AssignedExpert(it.Party); ok {
			return id
		}
		return -1
	})
	if post.errs > 0 {
		return nil, fmt.Errorf("continual: post-swap evaluation pass errored %d times", post.errs)
	}

	st := ctrl.ContinualState()
	monCfg := cfg.Monitor // report resolved economy in the options block
	a := &experiments.AdaptLiveArtifact{
		Schema: experiments.AdaptLiveSchemaVersion,
		Name:   experiments.AdaptLiveArtifactName,
		Options: experiments.AdaptLiveOptions{
			CheckpointWindows:    cp.WindowsDone,
			Parties:              len(cp.Aggregator.Assignment),
			SamplesPerParty:      cfg.SamplesPerParty,
			TestPerParty:         cfg.TestPerParty,
			Seed:                 cp.Seed,
			Concurrency:          cfg.Concurrency,
			ShiftKind:            cfg.Corruption.Kind.String(),
			ShiftSeverity:        cfg.Corruption.Severity,
			EvalEvery:            monCfg.EvalEvery,
			BaselineSize:         monCfg.BaselineSize,
			WindowSize:           monCfg.WindowSize,
			Threshold:            monCfg.Threshold,
			Resamples:            monCfg.Calibrate.Resamples,
			Hysteresis:           st.Hysteresis,
			CooldownMs:           st.CooldownSeconds * 1e3,
			ValidationMinSamples: cfg.Controller.Validation.MinSamples,
			ValidationDisabled:   cfg.Controller.Validation.Disabled,
		},
		Requests:           requests.Load(),
		Errors:             errsN.Load(),
		Rejected:           rejected.Load(),
		DurationMs:         float64(driveDur.Microseconds()) / 1e3,
		ShiftAtSample:      shiftTeed,
		ExpertsBefore:      snapB.NumExperts(),
		ExpertsAfter:       adapted.NumExperts(),
		WindowsCompleted:   st.WindowsCompleted,
		WindowsRolledBack:  st.WindowsRolledBack,
		WindowsRejected:    st.WindowsRejected,
		SwappedFromVersion: fromVersion,
		SwappedToVersion:   adapted.Version,

		EvalRequests:            frozen.requests + post.requests,
		FrozenShiftedRouted:     frozen.routing(),
		FrozenShiftedAccuracy:   frozen.accuracy(),
		PostSwapShiftedRouted:   post.routing(),
		PostSwapShiftedAccuracy: post.accuracy(),
	}
	if driveDur > 0 {
		a.ThroughputPerSec = float64(a.Requests) / driveDur.Seconds()
	}
	if tr := st.LastTrigger; tr != nil && tr.TeedAt > shiftTeed {
		a.Detected = true
		a.DetectedAtSample = tr.TeedAt
		a.DetectionLatencySamples = tr.TeedAt - shiftTeed
		a.ScoreAtDetection = tr.Score
	}
	if w := st.LastWindow; w != nil {
		a.WindowDurationMs = w.DurationMs
		a.ShiftedParties = w.ShiftedParties
		a.NewExperts = w.NewExperts
		a.Merged = w.Merged
		if v := w.Validation; v != nil {
			a.ValidationSamples = v.Samples
			a.ValidationBaselineMatched = v.BaselineMatched
			a.ValidationCandidateMatched = v.CandidateMatched
		}
	}
	if closed {
		a.AdaptLatencyMs = float64(adaptLatency.Microseconds()) / 1e3
	}
	return a, nil
}
