package cluster

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Linkage selects how inter-cluster distance is measured during
// agglomerative merging.
type Linkage int

// Supported linkages.
const (
	SingleLinkage Linkage = iota + 1
	CompleteLinkage
	AverageLinkage
)

// String implements fmt.Stringer.
func (l Linkage) String() string {
	switch l {
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	case AverageLinkage:
		return "average"
	default:
		return fmt.Sprintf("linkage(%d)", int(l))
	}
}

// Agglomerative performs bottom-up hierarchical clustering: every point
// starts as its own cluster and the closest pair (under the linkage) is
// merged until either k clusters remain (k > 0) or the closest pair is
// farther than maxDist (k == 0). FedDrift's full algorithm uses exactly
// this style of hierarchical merging over per-model loss vectors; the
// aggregator can use it as a drop-in alternative to k-means.
func Agglomerative(points []tensor.Vector, k int, maxDist float64, linkage Linkage, _ *tensor.RNG) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if k < 0 {
		return nil, fmt.Errorf("cluster: negative k %d", k)
	}
	if k == 0 && (maxDist <= 0 || math.IsNaN(maxDist)) {
		return nil, fmt.Errorf("cluster: k=0 requires positive maxDist, got %g", maxDist)
	}
	if k > len(points) {
		k = len(points)
	}
	switch linkage {
	case SingleLinkage, CompleteLinkage, AverageLinkage:
	default:
		return nil, fmt.Errorf("cluster: unknown linkage %v", linkage)
	}

	// Pairwise point distances, computed once.
	n := len(points)
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := 0; j < i; j++ {
			d := tensor.Distance(points[i], points[j])
			dist[i][j] = d
			dist[j][i] = d
		}
	}

	// clusters holds member indices; nil entries are merged away.
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	active := n

	linkDist := func(a, b []int) float64 {
		switch linkage {
		case SingleLinkage:
			best := math.Inf(1)
			for _, i := range a {
				for _, j := range b {
					if dist[i][j] < best {
						best = dist[i][j]
					}
				}
			}
			return best
		case CompleteLinkage:
			worst := 0.0
			for _, i := range a {
				for _, j := range b {
					if dist[i][j] > worst {
						worst = dist[i][j]
					}
				}
			}
			return worst
		default: // AverageLinkage
			var sum float64
			for _, i := range a {
				for _, j := range b {
					sum += dist[i][j]
				}
			}
			return sum / float64(len(a)*len(b))
		}
	}

	for active > 1 {
		if k > 0 && active <= k {
			break
		}
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if clusters[i] == nil {
				continue
			}
			for j := i + 1; j < n; j++ {
				if clusters[j] == nil {
					continue
				}
				if d := linkDist(clusters[i], clusters[j]); d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		if k == 0 && best > maxDist {
			break
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		clusters[bj] = nil
		active--
	}

	// Materialize the result.
	res := &Result{Assignments: make([]int, n)}
	for _, members := range clusters {
		if members == nil {
			continue
		}
		c := len(res.Centroids)
		vs := make([]tensor.Vector, len(members))
		for i, m := range members {
			vs[i] = points[m]
			res.Assignments[m] = c
		}
		centroid, err := tensor.Mean(vs)
		if err != nil {
			return nil, err
		}
		res.Centroids = append(res.Centroids, centroid)
	}
	for i, a := range res.Assignments {
		res.Inertia += tensor.SquaredDistance(points[i], res.Centroids[a])
	}
	return res, nil
}
