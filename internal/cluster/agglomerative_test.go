package cluster

import (
	"errors"
	"testing"

	"repro/internal/tensor"
)

func TestAgglomerativeFixedK(t *testing.T) {
	rng := tensor.NewRNG(1)
	centers := []tensor.Vector{{0, 0}, {10, 10}, {-10, 10}}
	pts, truth := blobs(rng, centers, 12, 0.4)
	for _, linkage := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
		r, err := Agglomerative(pts, 3, 0, linkage, rng)
		if err != nil {
			t.Fatalf("%v: %v", linkage, err)
		}
		if r.K() != 3 {
			t.Fatalf("%v: k = %d", linkage, r.K())
		}
		for blob := 0; blob < 3; blob++ {
			seen := map[int]bool{}
			for i, g := range truth {
				if g == blob {
					seen[r.Assignments[i]] = true
				}
			}
			if len(seen) != 1 {
				t.Fatalf("%v: blob %d split: %v", linkage, blob, seen)
			}
		}
	}
}

func TestAgglomerativeDistanceCutoff(t *testing.T) {
	rng := tensor.NewRNG(2)
	centers := []tensor.Vector{{0, 0}, {50, 50}}
	pts, _ := blobs(rng, centers, 8, 0.3)
	// Cutoff below the inter-blob gap: two clusters emerge naturally.
	r, err := Agglomerative(pts, 0, 10, AverageLinkage, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.K() != 2 {
		t.Fatalf("cutoff clustering k = %d, want 2", r.K())
	}
	// Huge cutoff: everything merges into one.
	r, err = Agglomerative(pts, 0, 1e9, AverageLinkage, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.K() != 1 {
		t.Fatalf("huge cutoff k = %d, want 1", r.K())
	}
}

func TestAgglomerativeValidation(t *testing.T) {
	rng := tensor.NewRNG(3)
	if _, err := Agglomerative(nil, 2, 0, SingleLinkage, rng); !errors.Is(err, ErrNoPoints) {
		t.Fatalf("want ErrNoPoints, got %v", err)
	}
	pts := []tensor.Vector{{1}, {2}}
	if _, err := Agglomerative(pts, -1, 0, SingleLinkage, rng); err == nil {
		t.Fatal("negative k should error")
	}
	if _, err := Agglomerative(pts, 0, 0, SingleLinkage, rng); err == nil {
		t.Fatal("k=0 without maxDist should error")
	}
	if _, err := Agglomerative(pts, 2, 0, Linkage(99), rng); err == nil {
		t.Fatal("unknown linkage should error")
	}
	// k > n clamps.
	r, err := Agglomerative(pts, 5, 0, SingleLinkage, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.K() != 2 {
		t.Fatalf("clamped k = %d", r.K())
	}
}

func TestAgglomerativeSingleVsCompleteChaining(t *testing.T) {
	// A chain of points: single linkage merges the chain into one cluster;
	// complete linkage prefers compact groups.
	pts := []tensor.Vector{{0}, {1}, {2}, {3}, {4}, {5}, {20}, {21}}
	rng := tensor.NewRNG(4)
	single, err := Agglomerative(pts, 2, 0, SingleLinkage, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Chain 0..5 together, 20-21 together.
	if single.Assignments[0] != single.Assignments[5] {
		t.Fatalf("single linkage should chain: %v", single.Assignments)
	}
	if single.Assignments[6] != single.Assignments[7] || single.Assignments[0] == single.Assignments[6] {
		t.Fatalf("far pair should be separate: %v", single.Assignments)
	}
	complete, err := Agglomerative(pts, 3, 0, CompleteLinkage, rng)
	if err != nil {
		t.Fatal(err)
	}
	if complete.K() != 3 {
		t.Fatalf("complete k = %d", complete.K())
	}
}

func TestAgglomerativeLinkageString(t *testing.T) {
	if SingleLinkage.String() != "single" || CompleteLinkage.String() != "complete" || AverageLinkage.String() != "average" {
		t.Fatal("linkage strings wrong")
	}
	if Linkage(42).String() != "linkage(42)" {
		t.Fatal("unknown linkage string wrong")
	}
}
