package cluster

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// blobs generates n points per center around each given center.
func blobs(rng *tensor.RNG, centers []tensor.Vector, n int, sigma float64) ([]tensor.Vector, []int) {
	var pts []tensor.Vector
	var truth []int
	for c, ctr := range centers {
		for i := 0; i < n; i++ {
			p := ctr.Clone()
			for j := range p {
				p[j] += sigma * rng.Norm()
			}
			pts = append(pts, p)
			truth = append(truth, c)
		}
	}
	return pts, truth
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := tensor.NewRNG(1)
	centers := []tensor.Vector{{0, 0}, {10, 10}, {-10, 10}}
	pts, truth := blobs(rng, centers, 30, 0.5)
	r, err := KMeans(pts, 3, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.K() != 3 {
		t.Fatalf("k = %d", r.K())
	}
	// Every ground-truth blob must map to a single cluster.
	for blob := 0; blob < 3; blob++ {
		seen := map[int]int{}
		for i, g := range truth {
			if g == blob {
				seen[r.Assignments[i]]++
			}
		}
		if len(seen) != 1 {
			t.Fatalf("blob %d split across clusters: %v", blob, seen)
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	rng := tensor.NewRNG(2)
	if _, err := KMeans(nil, 2, Config{}, rng); !errors.Is(err, ErrNoPoints) {
		t.Fatalf("want ErrNoPoints, got %v", err)
	}
	if _, err := KMeans([]tensor.Vector{{1}}, 0, Config{}, rng); err == nil {
		t.Fatal("want error for k=0")
	}
	// k > n reduces to n clusters.
	r, err := KMeans([]tensor.Vector{{1}, {2}}, 5, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.K() != 2 {
		t.Fatalf("k = %d, want 2", r.K())
	}
}

func TestKMeansSinglePoint(t *testing.T) {
	rng := tensor.NewRNG(3)
	r, err := KMeans([]tensor.Vector{{5, 5}}, 1, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.Inertia != 0 {
		t.Fatalf("inertia = %g", r.Inertia)
	}
	if r.Assignments[0] != 0 {
		t.Fatal("assignment should be 0")
	}
}

func TestKMeansMembers(t *testing.T) {
	r := &Result{
		Centroids:   []tensor.Vector{{0}, {1}},
		Assignments: []int{0, 1, 0, 1, 1},
	}
	m := r.Members(1)
	if len(m) != 3 || m[0] != 1 || m[2] != 4 {
		t.Fatalf("members = %v", m)
	}
	if got := r.Members(7); got != nil {
		t.Fatalf("members of absent cluster = %v", got)
	}
}

func TestDaviesBouldinPrefersTrueK(t *testing.T) {
	rng := tensor.NewRNG(4)
	centers := []tensor.Vector{{0, 0}, {20, 0}, {0, 20}}
	pts, _ := blobs(rng, centers, 25, 0.5)
	var scores []float64
	for k := 2; k <= 5; k++ {
		r, err := KMeans(pts, k, Config{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		scores = append(scores, DaviesBouldin(pts, r))
	}
	// k=3 (index 1) should be the minimum.
	for i, s := range scores {
		if i != 1 && s < scores[1] {
			t.Fatalf("DB index prefers k=%d (%g) over true k=3 (%g)", i+2, s, scores[1])
		}
	}
}

func TestDaviesBouldinDegenerate(t *testing.T) {
	pts := []tensor.Vector{{1}, {1}}
	r := &Result{Centroids: []tensor.Vector{{1}}, Assignments: []int{0, 0}}
	if !math.IsInf(DaviesBouldin(pts, r), 1) {
		t.Fatal("k<2 should yield +Inf")
	}
}

func TestSelectK(t *testing.T) {
	rng := tensor.NewRNG(5)
	centers := []tensor.Vector{{0, 0}, {15, 15}}
	pts, _ := blobs(rng, centers, 20, 0.4)
	r, err := SelectK(pts, 5, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.K() != 2 {
		t.Fatalf("selected k = %d, want 2", r.K())
	}
}

func TestSelectKSingleRegime(t *testing.T) {
	rng := tensor.NewRNG(6)
	// Identical points: DB is +Inf for every k>=2, so k=1 must win.
	pts := []tensor.Vector{{3, 3}, {3, 3}, {3, 3}, {3, 3}}
	r, err := SelectK(pts, 3, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.K() != 1 {
		t.Fatalf("selected k = %d, want 1 for identical points", r.K())
	}
}

func TestSelectKErrors(t *testing.T) {
	rng := tensor.NewRNG(7)
	if _, err := SelectK(nil, 3, Config{}, rng); !errors.Is(err, ErrNoPoints) {
		t.Fatalf("want ErrNoPoints, got %v", err)
	}
	if _, err := SelectK([]tensor.Vector{{1}}, 0, Config{}, rng); err == nil {
		t.Fatal("want error for maxK=0")
	}
	if _, err := SelectK([]tensor.Vector{{1}}, 1, Config{}, rng); err != nil {
		t.Fatalf("maxK=1 should succeed: %v", err)
	}
}

func TestSilhouette(t *testing.T) {
	rng := tensor.NewRNG(8)
	centers := []tensor.Vector{{0, 0}, {20, 20}}
	pts, _ := blobs(rng, centers, 15, 0.3)
	good, err := KMeans(pts, 2, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := Silhouette(pts, good)
	if s < 0.8 {
		t.Fatalf("well-separated silhouette = %g, want high", s)
	}
	// Single cluster silhouette is undefined → 0.
	one, err := KMeans(pts, 1, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if Silhouette(pts, one) != 0 {
		t.Fatal("k=1 silhouette should be 0")
	}
}

// Property: every point is assigned to its nearest centroid after KMeans
// converges (Lloyd invariant).
func TestPropertyNearestCentroidAssignment(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 10 + rng.Intn(30)
		pts := make([]tensor.Vector, n)
		for i := range pts {
			pts[i] = rng.NormVec(3, 0, 5)
		}
		k := 1 + rng.Intn(4)
		r, err := KMeans(pts, k, Config{}, rng)
		if err != nil {
			return false
		}
		for i, p := range pts {
			assigned := tensor.SquaredDistance(p, r.Centroids[r.Assignments[i]])
			for _, c := range r.Centroids {
				if tensor.SquaredDistance(p, c) < assigned-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: inertia never increases when k grows (for the best of a few
// restarts this holds statistically; we check weak monotonicity with slack).
func TestInertiaDecreasesWithK(t *testing.T) {
	rng := tensor.NewRNG(9)
	pts := make([]tensor.Vector, 60)
	for i := range pts {
		pts[i] = rng.NormVec(2, 0, 3)
	}
	prev := math.Inf(1)
	for k := 1; k <= 5; k++ {
		best := math.Inf(1)
		for restart := 0; restart < 5; restart++ {
			r, err := KMeans(pts, k, Config{}, rng)
			if err != nil {
				t.Fatal(err)
			}
			if r.Inertia < best {
				best = r.Inertia
			}
		}
		if best > prev*1.05 {
			t.Fatalf("inertia increased from %g to %g at k=%d", prev, best, k)
		}
		prev = best
	}
}
