// Package cluster implements the unsupervised grouping primitives the
// ShiftEx aggregator uses to cluster covariate-shifted parties by their
// latent representations (§5.2.1 of the paper): k-means with k-means++
// initialization, the Davies-Bouldin index, and automatic selection of the
// cluster count.
package cluster

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// ErrNoPoints indicates clustering was requested over an empty point set.
var ErrNoPoints = errors.New("cluster: no points")

// Result holds a clustering of points into k groups.
type Result struct {
	// Centroids has length k.
	Centroids []tensor.Vector
	// Assignments maps each input point index to its centroid index.
	Assignments []int
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
}

// K returns the number of clusters.
func (r *Result) K() int { return len(r.Centroids) }

// Members returns the point indices assigned to cluster c.
func (r *Result) Members(c int) []int {
	var out []int
	for i, a := range r.Assignments {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

// Config controls the k-means iteration.
type Config struct {
	// MaxIters bounds Lloyd iterations; 0 means 50.
	MaxIters int
	// Tol stops iteration when inertia improves by less than Tol; 0 means 1e-6.
	Tol float64
}

func (c Config) withDefaults() Config {
	if c.MaxIters <= 0 {
		c.MaxIters = 50
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	return c
}

// KMeans clusters points into k groups with Lloyd's algorithm and k-means++
// seeding. It returns an error when k is non-positive or there are no
// points; when k exceeds the number of points, k is reduced to len(points).
func KMeans(points []tensor.Vector, k int, cfg Config, rng *tensor.RNG) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if k <= 0 {
		return nil, fmt.Errorf("cluster: invalid k=%d", k)
	}
	if k > len(points) {
		k = len(points)
	}
	cfg = cfg.withDefaults()

	centroids := seedPlusPlus(points, k, rng)
	assignments := make([]int, len(points))
	prevInertia := math.Inf(1)

	var inertia float64
	for iter := 0; iter < cfg.MaxIters; iter++ {
		inertia = assign(points, centroids, assignments)
		if prevInertia-inertia < cfg.Tol {
			break
		}
		prevInertia = inertia
		recompute(points, centroids, assignments, rng)
	}
	inertia = assign(points, centroids, assignments)
	return &Result{Centroids: centroids, Assignments: assignments, Inertia: inertia}, nil
}

// seedPlusPlus picks k initial centroids with k-means++ (D² weighting).
func seedPlusPlus(points []tensor.Vector, k int, rng *tensor.RNG) []tensor.Vector {
	centroids := make([]tensor.Vector, 0, k)
	first := rng.Intn(len(points))
	centroids = append(centroids, points[first].Clone())

	d2 := make(tensor.Vector, len(points))
	for len(centroids) < k {
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := tensor.SquaredDistance(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
		}
		idx := rng.Categorical(d2)
		centroids = append(centroids, points[idx].Clone())
	}
	return centroids
}

// assign writes the nearest-centroid index for every point and returns the
// total inertia.
func assign(points []tensor.Vector, centroids []tensor.Vector, out []int) float64 {
	var inertia float64
	for i, p := range points {
		best, bestIdx := math.Inf(1), 0
		for c, ctr := range centroids {
			if d := tensor.SquaredDistance(p, ctr); d < best {
				best, bestIdx = d, c
			}
		}
		out[i] = bestIdx
		inertia += best
	}
	return inertia
}

// recompute moves each centroid to the mean of its members; an empty cluster
// is re-seeded at a random point to avoid collapse.
func recompute(points []tensor.Vector, centroids []tensor.Vector, assignments []int, rng *tensor.RNG) {
	dim := len(points[0])
	counts := make([]int, len(centroids))
	for c := range centroids {
		centroids[c] = tensor.NewVector(dim)
	}
	for i, a := range assignments {
		counts[a]++
		for j, v := range points[i] {
			centroids[a][j] += v
		}
	}
	for c := range centroids {
		if counts[c] == 0 {
			centroids[c] = points[rng.Intn(len(points))].Clone()
			continue
		}
		centroids[c].Scale(1 / float64(counts[c]))
	}
}

// DaviesBouldin computes the Davies-Bouldin index of a clustering: the
// average over clusters of the worst-case ratio of within-cluster scatter to
// between-centroid separation. Lower is better. Clusterings with fewer than
// two non-empty clusters, or with any singleton cluster, return +Inf: the
// index is undefined for the former, and singletons have zero scatter,
// which would otherwise make the degenerate "every point its own cluster"
// solution win any minimization.
func DaviesBouldin(points []tensor.Vector, r *Result) float64 {
	k := r.K()
	if k < 2 {
		return math.Inf(1)
	}
	scatter := make([]float64, k)
	counts := make([]int, k)
	for i, a := range r.Assignments {
		scatter[a] += tensor.Distance(points[i], r.Centroids[a])
		counts[a]++
	}
	nonEmpty := 0
	for c := 0; c < k; c++ {
		if counts[c] == 1 {
			return math.Inf(1)
		}
		if counts[c] > 0 {
			scatter[c] /= float64(counts[c])
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		return math.Inf(1)
	}
	var sum float64
	for i := 0; i < k; i++ {
		if counts[i] == 0 {
			continue
		}
		worst := 0.0
		for j := 0; j < k; j++ {
			if i == j || counts[j] == 0 {
				continue
			}
			sep := tensor.Distance(r.Centroids[i], r.Centroids[j])
			if sep == 0 {
				continue
			}
			if ratio := (scatter[i] + scatter[j]) / sep; ratio > worst {
				worst = ratio
			}
		}
		sum += worst
	}
	return sum / float64(nonEmpty)
}

// SelectK runs k-means for k = 1..maxK and returns the clustering with the
// best (lowest) Davies-Bouldin index, implementing the paper's DB-index
// based choice of expert-cluster count (§5.2.1). A single cluster is chosen
// only when maxK == 1 or there are too few points for k=2.
func SelectK(points []tensor.Vector, maxK int, cfg Config, rng *tensor.RNG) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if maxK <= 0 {
		return nil, fmt.Errorf("cluster: invalid maxK=%d", maxK)
	}
	if maxK > len(points) {
		maxK = len(points)
	}
	single, err := KMeans(points, 1, cfg, rng)
	if err != nil {
		return nil, err
	}
	if maxK == 1 {
		return single, nil
	}

	best := single
	bestScore := math.Inf(1)
	for k := 2; k <= maxK; k++ {
		r, err := KMeans(points, k, cfg, rng)
		if err != nil {
			return nil, err
		}
		score := DaviesBouldin(points, r)
		// Require a meaningful improvement before accepting a larger k,
		// so that floating-point ties resolve to the smallest cluster
		// count (the paper's bias against expert proliferation).
		if score < bestScore-1e-9 {
			best, bestScore = r, score
		}
	}
	// If no multi-cluster solution produced a finite DB index (all points
	// coincide), keep the single cluster.
	if math.IsInf(bestScore, 1) {
		return single, nil
	}
	return best, nil
}

// Silhouette returns the mean silhouette coefficient of a clustering in
// [-1, 1]; higher means tighter, better-separated clusters. Undefined
// configurations (k < 2) return 0.
func Silhouette(points []tensor.Vector, r *Result) float64 {
	k := r.K()
	if k < 2 || len(points) < 2 {
		return 0
	}
	counts := make([]int, k)
	for _, a := range r.Assignments {
		counts[a]++
	}
	var total float64
	var scored int
	for i, p := range points {
		own := r.Assignments[i]
		if counts[own] < 2 {
			continue
		}
		// Mean distance to own cluster (a) and nearest other cluster (b).
		sums := make([]float64, k)
		for j, q := range points {
			if i == j {
				continue
			}
			sums[r.Assignments[j]] += tensor.Distance(p, q)
		}
		a := sums[own] / float64(counts[own]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || counts[c] == 0 {
				continue
			}
			if m := sums[c] / float64(counts[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
			scored++
		}
	}
	if scored == 0 {
		return 0
	}
	return total / float64(scored)
}
