package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func validTracingArtifact() *TracingArtifact {
	return &TracingArtifact{
		Schema: TracingSchemaVersion,
		Name:   TracingArtifactName,
		Options: TracingOptions{
			CheckpointWindows: 4,
			Arch:              []int{32, 128, 64, 10},
			Parties:           8,
			SamplesPerParty:   40,
			TestPerParty:      20,
			Seed:              42,
			Concurrency:       8,
			Repeat:            300,
			Workers:           2,
			MaxBatch:          16,
			MaxDelayMs:        0.2,
			CacheSize:         4096,
			RingSize:          4096,
			Trials:            5,
		},
		BaselineRequests:         48000,
		BaselineDurationMs:       700,
		BaselineThroughputPerSec: 68000,
		BaselineLatencyMsP99:     6,
		TracedRequests:           48000,
		TracedDurationMs:         710,
		TracedThroughputPerSec:   67000,
		TracedLatencyMsP99:       6.1,
		SpansRecorded:            144000,
		OverheadPercent:          1.47,
	}
}

func TestTracingArtifactRoundTrip(t *testing.T) {
	a := validTracingArtifact()
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTracingArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, a)
	}
}

func TestTracingArtifactRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeTracingArtifact(strings.NewReader(`{"schema":1,"name":"tracing","bogus":true}`)); err == nil {
		t.Fatal("expected unknown-field error")
	}
}

func TestTracingArtifactValidate(t *testing.T) {
	for name, mutate := range map[string]func(*TracingArtifact){
		"wrong schema":  func(a *TracingArtifact) { a.Schema = 99 },
		"wrong name":    func(a *TracingArtifact) { a.Name = "serving" },
		"no baseline":   func(a *TracingArtifact) { a.BaselineRequests = 0 },
		"no traced":     func(a *TracingArtifact) { a.TracedRequests = 0 },
		"no throughput": func(a *TracingArtifact) { a.TracedThroughputPerSec = 0 },
		"no spans":      func(a *TracingArtifact) { a.SpansRecorded = 0 },
	} {
		a := validTracingArtifact()
		mutate(a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
	if err := validTracingArtifact().Validate(); err != nil {
		t.Errorf("valid artifact rejected: %v", err)
	}
}

func TestTracingArtifactCheckOverhead(t *testing.T) {
	a := validTracingArtifact()
	if err := a.CheckOverhead(5); err != nil {
		t.Errorf("1.47%% should pass a 5%% gate: %v", err)
	}
	a.OverheadPercent = 7.2
	if err := a.CheckOverhead(5); err == nil {
		t.Error("7.2% should fail a 5% gate")
	}
	// Negative overhead (traced faster than baseline, i.e. noise) is
	// valid and passes.
	a.OverheadPercent = -0.3
	if err := a.CheckOverhead(5); err != nil {
		t.Errorf("negative overhead should pass: %v", err)
	}
}
