package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// TracingSchemaVersion is bumped whenever the BENCH_tracing.json layout
// changes incompatibly; decoders reject other versions.
const TracingSchemaVersion = 1

// TracingArtifactName keys the tracing-overhead benchmark's artifact
// file (BENCH_tracing.json via ArtifactFileName).
const TracingArtifactName = "tracing"

// TracingOptions records the protocol of one tracing-overhead run: the
// same in-process serving workload replayed as Trials interleaved
// baseline/traced pairs — spans off versus a root span per request
// (which makes the serving pipeline record route and batch spans too).
// Each side reports its best trial, which cancels interference from
// other tenants of the host that can only ever slow a trial down.
type TracingOptions struct {
	CheckpointWindows int     `json:"checkpointWindows"`
	Arch              []int   `json:"arch"` // layer sizes of the served model, from the checkpoint
	Parties           int     `json:"parties"`
	SamplesPerParty   int     `json:"samplesPerParty"`
	TestPerParty      int     `json:"testPerParty"`
	Seed              uint64  `json:"seed"`
	Concurrency       int     `json:"concurrency"`
	Repeat            int     `json:"repeat"`
	Workers           int     `json:"workers"`
	MaxBatch          int     `json:"maxBatch"`
	MaxDelayMs        float64 `json:"maxDelayMs"`
	CacheSize         int     `json:"cacheSize"`
	RingSize          int     `json:"ringSize"` // span ring capacity in the traced phase
	Trials            int     `json:"trials"`   // interleaved baseline/traced pairs; best of each side is reported
}

// TracingArtifact is the versioned record of a tracing-on vs
// tracing-off serving comparison — the proof that the telemetry layer
// is near-free on the request path. Overhead is measured on
// throughput: (off - on) / off, in percent; negative means the traced
// run was faster (noise).
type TracingArtifact struct {
	Schema  int            `json:"schema"`
	Name    string         `json:"name"`
	Options TracingOptions `json:"options"`

	BaselineRequests         uint64  `json:"baselineRequests"`
	BaselineDurationMs       float64 `json:"baselineDurationMs"`
	BaselineThroughputPerSec float64 `json:"baselineThroughputPerSec"`
	BaselineLatencyMsP99     float64 `json:"baselineLatencyMsP99"`

	TracedRequests         uint64  `json:"tracedRequests"`
	TracedDurationMs       float64 `json:"tracedDurationMs"`
	TracedThroughputPerSec float64 `json:"tracedThroughputPerSec"`
	TracedLatencyMsP99     float64 `json:"tracedLatencyMsP99"`
	SpansRecorded          uint64  `json:"spansRecorded"` // total spans minted in the traced phase

	OverheadPercent float64 `json:"overheadPercent"`
}

// Validate checks schema version and structural coherence.
func (a *TracingArtifact) Validate() error {
	switch {
	case a.Schema != TracingSchemaVersion:
		return fmt.Errorf("experiments: tracing artifact schema %d, want %d", a.Schema, TracingSchemaVersion)
	case a.Name != TracingArtifactName:
		return fmt.Errorf("experiments: tracing artifact name %q, want %q", a.Name, TracingArtifactName)
	case a.BaselineRequests == 0:
		return errors.New("experiments: tracing artifact records no baseline requests")
	case a.TracedRequests == 0:
		return errors.New("experiments: tracing artifact records no traced requests")
	case a.BaselineThroughputPerSec <= 0 || a.TracedThroughputPerSec <= 0:
		return errors.New("experiments: tracing artifact has a non-positive throughput")
	case a.SpansRecorded == 0:
		return errors.New("experiments: tracing artifact recorded no spans in the traced phase — the comparison measured nothing")
	}
	return nil
}

// CheckOverhead enforces the gate: the traced run must not cost more
// than maxPercent of baseline throughput.
func (a *TracingArtifact) CheckOverhead(maxPercent float64) error {
	if a.OverheadPercent > maxPercent {
		return fmt.Errorf("experiments: tracing overhead %.2f%% exceeds the %.2f%% budget (baseline %.0f/s, traced %.0f/s)",
			a.OverheadPercent, maxPercent, a.BaselineThroughputPerSec, a.TracedThroughputPerSec)
	}
	return nil
}

// Encode writes the artifact as indented, newline-terminated JSON.
func (a *TracingArtifact) Encode(w io.Writer) error {
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: encode tracing artifact: %w", err)
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// DecodeTracingArtifact reads and validates one tracing artifact.
// Unknown fields are rejected so schema drift fails loudly.
func DecodeTracingArtifact(r io.Reader) (*TracingArtifact, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var a TracingArtifact
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("experiments: decode tracing artifact: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// WriteTracingArtifactFile encodes the artifact into dir under the
// canonical BENCH_tracing.json name and returns the written path.
func WriteTracingArtifactFile(dir string, a *TracingArtifact) (string, error) {
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		return "", err
	}
	path := filepath.Join(dir, ArtifactFileName(a.Name))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return "", fmt.Errorf("experiments: write tracing artifact: %w", err)
	}
	return path, nil
}

// ReadTracingArtifactFile decodes one tracing artifact from disk.
func ReadTracingArtifactFile(path string) (*TracingArtifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: read tracing artifact: %w", err)
	}
	defer f.Close()
	return DecodeTracingArtifact(f)
}
