package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// DriftSchemaVersion is bumped whenever the BENCH_drift.json layout
// changes incompatibly; decoders reject other versions.
const DriftSchemaVersion = 1

// DriftArtifactName keys the drift-detection benchmark's artifact file
// (BENCH_drift.json via ArtifactFileName).
const DriftArtifactName = "drift"

// DriftOptions records the protocol of one drift-detection run: a cold
// (cache-disabled) serving workload with a deterministic input
// corruption injected at ShiftAt of the run, replayed as Trials
// interleaved unmonitored/monitored pairs. The unmonitored side is the
// throughput baseline; the monitored side feeds the drift monitor and
// must both detect the injected shift and stay within the overhead
// budget. Best trial of each side is reported, which cancels
// interference from other tenants of the host.
type DriftOptions struct {
	CheckpointWindows int     `json:"checkpointWindows"`
	Arch              []int   `json:"arch"` // layer sizes of the served model, from the checkpoint
	Parties           int     `json:"parties"`
	SamplesPerParty   int     `json:"samplesPerParty"`
	TestPerParty      int     `json:"testPerParty"`
	Seed              uint64  `json:"seed"`
	Concurrency       int     `json:"concurrency"`
	Repeat            int     `json:"repeat"`
	Workers           int     `json:"workers"`
	MaxBatch          int     `json:"maxBatch"`
	MaxDelayMs        float64 `json:"maxDelayMs"`

	ShiftAt       float64 `json:"shiftAt"`       // fraction of the stream after which inputs shift
	ShiftKind     string  `json:"shiftKind"`     // corruption name (dataset.Corruption.String)
	ShiftSeverity int     `json:"shiftSeverity"` // corruption severity 1..5

	EvalEvery    int     `json:"evalEvery"`    // monitor: folded samples between drift evaluations
	SampleEvery  int     `json:"sampleEvery"`  // monitor: fold every Nth teed block (CPU governor)
	BaselineSize int     `json:"baselineSize"` // monitor: frozen pre-shift reservoir size
	WindowSize   int     `json:"windowSize"`   // monitor: recent-embedding window size
	Threshold    float64 `json:"threshold"`    // monitor: crossing threshold on the calibrated score
	Resamples    int     `json:"resamples"`    // monitor: bootstrap resamples calibrating δ
	Trials       int     `json:"trials"`       // interleaved unmonitored/monitored pairs
}

// DriftArtifact is the versioned record of one live drift-detection
// benchmark — the proof that the monitor plane both sees the injected
// regime change (finite detection latency, no pre-shift crossings) and
// is near-free on the request path. Overhead is measured on
// throughput: (baseline - monitored) / baseline, in percent; negative
// means the monitored run was faster (noise).
type DriftArtifact struct {
	Schema  int          `json:"schema"`
	Name    string       `json:"name"`
	Options DriftOptions `json:"options"`

	BaselineRequests         uint64  `json:"baselineRequests"`
	BaselineDurationMs       float64 `json:"baselineDurationMs"`
	BaselineThroughputPerSec float64 `json:"baselineThroughputPerSec"`

	MonitoredRequests         uint64  `json:"monitoredRequests"`
	MonitoredDurationMs       float64 `json:"monitoredDurationMs"`
	MonitoredThroughputPerSec float64 `json:"monitoredThroughputPerSec"`

	OverheadPercent float64 `json:"overheadPercent"`

	// Detection record, from the best monitored trial. Samples are
	// counted in teed requests (the monitor's clock): the shift
	// watermark is the monitor's teed count at the injection instant,
	// and detection latency is the teed-sample gap between that
	// watermark and the first evaluation whose score crossed the
	// threshold.
	SamplesSeen             uint64  `json:"samplesSeen"`    // samples folded into sketches
	SamplesDropped          uint64  `json:"samplesDropped"` // backpressure drops (hot path never blocked)
	Evals                   uint64  `json:"evals"`          // drift evaluations run
	ShiftAtSample           uint64  `json:"shiftAtSample"`  // teed watermark at injection
	DetectedAtSample        uint64  `json:"detectedAtSample,omitempty"`
	DetectionLatencySamples uint64  `json:"detectionLatencySamples,omitempty"`
	Detected                bool    `json:"detected"`
	FalsePositives          int     `json:"falsePositives"` // threshold crossings at or before the watermark
	Delta                   float64 `json:"delta"`          // calibrated null-quantile the score is normalized by
	ScoreAtDetection        float64 `json:"scoreAtDetection,omitempty"`
	MaxScore                float64 `json:"maxScore"` // highest score over all evaluations
}

// Validate checks schema version and structural coherence.
func (a *DriftArtifact) Validate() error {
	switch {
	case a.Schema != DriftSchemaVersion:
		return fmt.Errorf("experiments: drift artifact schema %d, want %d", a.Schema, DriftSchemaVersion)
	case a.Name != DriftArtifactName:
		return fmt.Errorf("experiments: drift artifact name %q, want %q", a.Name, DriftArtifactName)
	case a.Options.ShiftAt <= 0 || a.Options.ShiftAt >= 1:
		return fmt.Errorf("experiments: drift artifact shiftAt %g outside (0,1)", a.Options.ShiftAt)
	case a.BaselineRequests == 0:
		return errors.New("experiments: drift artifact records no baseline requests")
	case a.MonitoredRequests == 0:
		return errors.New("experiments: drift artifact records no monitored requests")
	case a.BaselineThroughputPerSec <= 0 || a.MonitoredThroughputPerSec <= 0:
		return errors.New("experiments: drift artifact has a non-positive throughput")
	case a.SamplesSeen == 0:
		return errors.New("experiments: drift artifact folded no samples — the monitor saw nothing")
	case a.Evals == 0:
		return errors.New("experiments: drift artifact ran no drift evaluations")
	case a.Delta <= 0 || math.IsNaN(a.Delta) || math.IsInf(a.Delta, 0):
		return fmt.Errorf("experiments: drift artifact has degenerate calibration delta %g", a.Delta)
	case a.Detected && a.DetectedAtSample <= a.ShiftAtSample:
		return fmt.Errorf("experiments: drift artifact claims detection at sample %d, at or before the shift watermark %d",
			a.DetectedAtSample, a.ShiftAtSample)
	case a.Detected && a.DetectionLatencySamples != a.DetectedAtSample-a.ShiftAtSample:
		return fmt.Errorf("experiments: drift artifact latency %d inconsistent with detection %d - watermark %d",
			a.DetectionLatencySamples, a.DetectedAtSample, a.ShiftAtSample)
	}
	return nil
}

// CheckDrift enforces the CI gate: the injected shift must have been
// detected, with zero pre-shift threshold crossings, at a monitoring
// overhead of no more than maxOverheadPercent of baseline throughput.
func (a *DriftArtifact) CheckDrift(maxOverheadPercent float64) error {
	switch {
	case !a.Detected:
		return fmt.Errorf("experiments: drift monitor never crossed the threshold after the injected shift (max score %.3f vs threshold %.3f over %d evals)",
			a.MaxScore, a.Options.Threshold, a.Evals)
	case a.FalsePositives != 0:
		return fmt.Errorf("experiments: drift monitor crossed the threshold %d time(s) before the injected shift", a.FalsePositives)
	case a.OverheadPercent > maxOverheadPercent:
		return fmt.Errorf("experiments: drift monitoring overhead %.2f%% exceeds the %.2f%% budget (baseline %.0f/s, monitored %.0f/s)",
			a.OverheadPercent, maxOverheadPercent, a.BaselineThroughputPerSec, a.MonitoredThroughputPerSec)
	}
	return nil
}

// Encode writes the artifact as indented, newline-terminated JSON.
func (a *DriftArtifact) Encode(w io.Writer) error {
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: encode drift artifact: %w", err)
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// DecodeDriftArtifact reads and validates one drift artifact. Unknown
// fields are rejected so schema drift fails loudly.
func DecodeDriftArtifact(r io.Reader) (*DriftArtifact, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var a DriftArtifact
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("experiments: decode drift artifact: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// WriteDriftArtifactFile encodes the artifact into dir under the
// canonical BENCH_drift.json name and returns the written path.
func WriteDriftArtifactFile(dir string, a *DriftArtifact) (string, error) {
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		return "", err
	}
	path := filepath.Join(dir, ArtifactFileName(a.Name))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return "", fmt.Errorf("experiments: write drift artifact: %w", err)
	}
	return path, nil
}

// ReadDriftArtifactFile decodes one drift artifact from disk.
func ReadDriftArtifactFile(path string) (*DriftArtifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: read drift artifact: %w", err)
	}
	defer f.Close()
	return DecodeDriftArtifact(f)
}
