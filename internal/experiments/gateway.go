package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// GatewaySchemaVersion is bumped whenever the BENCH_gateway.json layout
// changes incompatibly; decoders reject other versions.
const GatewaySchemaVersion = 1

// GatewayArtifactName keys the gateway benchmark's artifact file
// (BENCH_gateway.json via ArtifactFileName).
const GatewayArtifactName = "gateway"

// GatewayOptions records the gateway load protocol: the replica topology,
// the middleware chain the requests traversed, and the mid-load kill.
type GatewayOptions struct {
	CheckpointWindows int      `json:"checkpointWindows"`
	Parties           int      `json:"parties"`
	SamplesPerParty   int      `json:"samplesPerParty"`
	TestPerParty      int      `json:"testPerParty"`
	Seed              uint64   `json:"seed"`
	Models            []string `json:"models"`   // model names driven
	Replicas          int      `json:"replicas"` // replicas at start of run, all models
	TargetQPS         float64  `json:"targetQps"`
	Concurrency       int      `json:"concurrency"`
	Repeat            int      `json:"repeat"`
	ClientRetries     int      `json:"clientRetries"`
	PredictChain      []string `json:"predictChain"` // middleware names on the predict route
	KillReplica       bool     `json:"killReplica"`  // a replica was SIGKILLed mid-load
	KillAtFraction    float64  `json:"killAtFraction,omitempty"`
}

// GatewayModelResult is one model's standing after the run, as reported
// by the gateway's /v1/state.
type GatewayModelResult struct {
	Model           string  `json:"model"`
	Requests        uint64  `json:"requests"` // client-side requests addressed to it
	Accuracy        float64 `json:"accuracy"`
	HealthyReplicas int     `json:"healthyReplicas"`
	Replicas        int     `json:"replicas"`
	// Consistent-hash retention across the run's fleet shrink, from the
	// gateway's own key tracker: of the keys whose ring owner SURVIVED the
	// shrink, the fraction still routed to that owner. Zero when the model
	// saw no shrink.
	AffinityRetained float64 `json:"affinityRetained,omitempty"`
	MovedFraction    float64 `json:"movedFraction,omitempty"`
	KeysTracked      int     `json:"keysTracked,omitempty"`
}

// GatewayArtifact is the versioned, machine-readable record of one
// multi-process gateway load run: throughput and latency through the full
// middleware chain, failover behaviour across a mid-load replica kill,
// and the consistent-hash affinity that survived the shrink.
type GatewayArtifact struct {
	Schema  int            `json:"schema"`
	Name    string         `json:"name"`
	Options GatewayOptions `json:"options"`

	Requests         uint64  `json:"requests"` // completed predictions
	Errors           uint64  `json:"errors"`   // requests failed after client retries
	Rejected         uint64  `json:"rejected"` // middleware rejections observed (429/503)
	Retried          uint64  `json:"retried"`  // client-side retry attempts
	DurationMs       float64 `json:"durationMs"`
	ThroughputPerSec float64 `json:"throughputPerSec"`

	LatencyMsP50 float64 `json:"latencyMsP50"`
	LatencyMsP90 float64 `json:"latencyMsP90"`
	LatencyMsP99 float64 `json:"latencyMsP99"`
	LatencyMsMax float64 `json:"latencyMsMax"`

	Accuracy       float64 `json:"accuracy"`
	SessionHitRate float64 `json:"sessionHitRate"` // gateway session-cache hit rate
	Failovers      uint64  `json:"failovers"`      // answered by a ring successor
	Evictions      uint64  `json:"evictions"`
	Readmissions   uint64  `json:"readmissions"`

	Models []GatewayModelResult `json:"models"`
}

// Validate checks schema version and structural coherence. A kill run
// must carry the evidence it claims: at least one model with tracked
// affinity, and at least one eviction or failover (a kill nobody noticed
// proves nothing).
func (a *GatewayArtifact) Validate() error {
	switch {
	case a.Schema != GatewaySchemaVersion:
		return fmt.Errorf("experiments: gateway artifact schema %d, want %d", a.Schema, GatewaySchemaVersion)
	case a.Name != GatewayArtifactName:
		return fmt.Errorf("experiments: gateway artifact name %q, want %q", a.Name, GatewayArtifactName)
	case a.Requests == 0:
		return errors.New("experiments: gateway artifact records no completed requests")
	case a.DurationMs <= 0:
		return errors.New("experiments: gateway artifact has no duration")
	case len(a.Models) == 0:
		return errors.New("experiments: gateway artifact has no per-model breakdown")
	}
	for i, m := range a.Models {
		if m.Model == "" {
			return fmt.Errorf("experiments: gateway model %d has no name", i)
		}
	}
	if a.Options.KillReplica {
		if a.Evictions == 0 && a.Failovers == 0 {
			return errors.New("experiments: kill run recorded neither evictions nor failovers")
		}
		tracked := false
		for _, m := range a.Models {
			if m.KeysTracked > 0 {
				tracked = true
			}
		}
		if !tracked {
			return errors.New("experiments: kill run has no affinity tracking to assert on")
		}
	}
	return nil
}

// MinAffinityRetained returns the smallest per-model affinity retention
// among models that recorded a shrink, or 1 when none did — the number
// the ≥0.9 consistent-hashing acceptance gate checks.
func (a *GatewayArtifact) MinAffinityRetained() float64 {
	min := 1.0
	for _, m := range a.Models {
		if m.KeysTracked > 0 && m.AffinityRetained < min {
			min = m.AffinityRetained
		}
	}
	return min
}

// Encode writes the artifact as indented, newline-terminated JSON.
func (a *GatewayArtifact) Encode(w io.Writer) error {
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: encode gateway artifact: %w", err)
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// DecodeGatewayArtifact reads and validates one gateway artifact.
// Unknown fields are rejected so schema drift fails loudly.
func DecodeGatewayArtifact(r io.Reader) (*GatewayArtifact, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var a GatewayArtifact
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("experiments: decode gateway artifact: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// WriteGatewayArtifactFile encodes the artifact into dir under the
// canonical BENCH_gateway.json name and returns the written path.
func WriteGatewayArtifactFile(dir string, a *GatewayArtifact) (string, error) {
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		return "", err
	}
	path := filepath.Join(dir, ArtifactFileName(a.Name))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return "", fmt.Errorf("experiments: write gateway artifact: %w", err)
	}
	return path, nil
}

// ReadGatewayArtifactFile decodes one gateway artifact from disk.
func ReadGatewayArtifactFile(path string) (*GatewayArtifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: read gateway artifact: %w", err)
	}
	defer f.Close()
	return DecodeGatewayArtifact(f)
}
