package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func headlineCell(bench, tech string, seed uint64, elapsed time.Duration) CellResult {
	return CellResult{
		Cell: Cell{Benchmark: Benchmark{Name: bench}, Technique: TechniqueFactory{Name: tech}, Seed: seed},
		Result: metrics.RunResult{
			Technique: tech,
			Seed:      seed,
			Traces:    [][]float64{{0.5, 0.6}},
		},
		Elapsed: elapsed,
	}
}

func TestHeadlineGridCoversEverything(t *testing.T) {
	opts := HeadlineOptions()
	cells := HeadlineGrid(opts).Cells()
	want := len(Benchmarks()) * len(TechniqueNames()) * len(opts.Seeds)
	if len(cells) != want {
		t.Fatalf("headline grid has %d cells, want %d", len(cells), want)
	}
}

func TestHeadlineArtifactKeepsBenchmarkTags(t *testing.T) {
	opts := HeadlineOptions()
	cells := []CellResult{
		headlineCell("fmow", "shiftex", 1, 120*time.Millisecond),
		headlineCell("cifar10c", "fedprox", 2, 80*time.Millisecond),
	}
	a := HeadlineArtifact(opts, cells)
	if a.Name != HeadlineName {
		t.Fatalf("artifact name %q", a.Name)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Cells[0].Benchmark != "fmow" || a.Cells[1].Benchmark != "cifar10c" {
		t.Fatalf("benchmark tags lost: %+v", a.Cells)
	}
	total, err := a.TotalWallClockMS()
	if err != nil {
		t.Fatal(err)
	}
	if total != 200 {
		t.Fatalf("total wall clock %vms, want 200", total)
	}
}

func TestTotalWallClockRejectsStripped(t *testing.T) {
	a := HeadlineArtifact(HeadlineOptions(), []CellResult{headlineCell("fmow", "shiftex", 1, time.Second)})
	a.StripTiming()
	if _, err := a.TotalWallClockMS(); err == nil {
		t.Fatal("stripped artifact must not serve as a perf baseline")
	}
}

func TestCompareWallClock(t *testing.T) {
	opts := HeadlineOptions()
	baseline := HeadlineArtifact(opts, []CellResult{headlineCell("fmow", "shiftex", 1, time.Second)})
	fresh := func(elapsed time.Duration) *Artifact {
		return HeadlineArtifact(opts, []CellResult{headlineCell("fmow", "shiftex", 1, elapsed)})
	}

	ratio, regressed, summary, err := CompareWallClock(baseline, fresh(1100*time.Millisecond), 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if regressed || ratio != 1.1 {
		t.Fatalf("+10%% flagged as regression (ratio %v)", ratio)
	}
	if !strings.Contains(summary, "1100ms") || !strings.Contains(summary, "1000ms") {
		t.Fatalf("summary %q", summary)
	}

	_, regressed, _, err = CompareWallClock(baseline, fresh(1500*time.Millisecond), 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("+50% not flagged as regression")
	}

	stripped := fresh(time.Second)
	stripped.StripTiming()
	if _, _, _, err := CompareWallClock(baseline, stripped, 0.20); err == nil {
		t.Fatal("fresh run without wall-clock data should error")
	}

	// A run at a different protocol must be refused, not compared.
	other := HeadlineOptions()
	other.Scale = other.Scale / 2
	mismatched := HeadlineArtifact(other, []CellResult{headlineCell("fmow", "shiftex", 1, time.Second)})
	if _, _, _, err := CompareWallClock(baseline, mismatched, 0.20); err == nil {
		t.Fatal("protocol mismatch should error")
	}
}
