// Package experiments defines the paper's evaluation protocol (§6): the
// five benchmark scenarios, the matched training budgets for ShiftEx and
// the four baselines, the multi-seed runner, and formatters that regenerate
// every table and figure of the paper from measured data.
package experiments

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/adapt"
	"repro/internal/dataset"
	"repro/internal/federation"
	"repro/internal/fl"

	// The catalog registers the standard technique set (shiftex + the four
	// baselines) into the adapt registry this package resolves names from.
	_ "repro/internal/adapt/catalog"
)

// Benchmark is one dataset scenario preset.
type Benchmark struct {
	Name  string
	Spec  dataset.Spec
	Shift dataset.ShiftConfig
	// Hidden are the hidden-layer widths (embedding last); the input and
	// output widths come from the spec.
	Hidden []int
}

// Arch returns the full architecture for the benchmark.
func (b Benchmark) Arch() []int {
	arch := make([]int, 0, len(b.Hidden)+2)
	arch = append(arch, b.Spec.InputDim)
	arch = append(arch, b.Hidden...)
	arch = append(arch, b.Spec.NumClasses)
	return arch
}

// FMoW is the satellite-imagery benchmark: natural covariate diversity
// (weather families) plus label shift, tumbling windows, 50 parties.
func FMoW() Benchmark {
	shift := dataset.DefaultShiftConfig()
	shift.CovariateKinds = dataset.WeatherKinds()
	shift.LabelShift = true
	shift.RegimesPerWindow = 2
	shift.SeverityMin, shift.SeverityMax = 3, 5
	return Benchmark{Name: "fmow", Spec: dataset.FMoWSpec(), Shift: shift, Hidden: []int{32, 16}}
}

// CIFAR10C is the weather-corruption benchmark: 200 parties, sliding
// windows, few distinct corruption regimes (the paper observes a compact
// two-expert configuration).
func CIFAR10C() Benchmark {
	shift := dataset.DefaultShiftConfig()
	shift.CovariateKinds = []dataset.CorruptionKind{
		dataset.CorruptFog, dataset.CorruptRain, dataset.CorruptSnow, dataset.CorruptFrost,
	}
	shift.LabelShift = false
	shift.RegimesPerWindow = 1
	shift.SeverityMin, shift.SeverityMax = 3, 5
	return Benchmark{Name: "cifar10c", Spec: dataset.CIFAR10CSpec(), Shift: shift, Hidden: []int{32, 16}}
}

// TinyImageNetC is the many-class corruption benchmark with progressive
// corruption groups per window.
func TinyImageNetC() Benchmark {
	shift := dataset.DefaultShiftConfig()
	shift.CovariateKinds = dataset.WeatherKinds()
	shift.LabelShift = false
	shift.RegimesPerWindow = 2
	shift.SeverityMin, shift.SeverityMax = 3, 5
	return Benchmark{Name: "tinyimagenetc", Spec: dataset.TinyImageNetCSpec(), Shift: shift, Hidden: []int{48, 24}}
}

// FEMNIST is the handwritten-character benchmark: synthetic transforms plus
// Dirichlet label skew.
func FEMNIST() Benchmark {
	shift := dataset.DefaultShiftConfig()
	shift.CovariateKinds = dataset.SyntheticKinds()
	shift.LabelShift = true
	shift.DirichletAlpha = 0.5
	shift.RegimesPerWindow = 2
	shift.SeverityMin, shift.SeverityMax = 3, 5
	return Benchmark{Name: "femnist", Spec: dataset.FEMNISTSpec(), Shift: shift, Hidden: []int{40, 20}}
}

// FashionMNIST is the clothing benchmark: synthetic transforms plus
// Dirichlet label skew.
func FashionMNIST() Benchmark {
	shift := dataset.DefaultShiftConfig()
	shift.CovariateKinds = dataset.SyntheticKinds()
	shift.LabelShift = true
	shift.DirichletAlpha = 0.5
	shift.RegimesPerWindow = 2
	shift.SeverityMin, shift.SeverityMax = 3, 5
	return Benchmark{Name: "fashionmnist", Spec: dataset.FashionMNISTSpec(), Shift: shift, Hidden: []int{32, 16}}
}

// Benchmarks returns all five presets.
func Benchmarks() []Benchmark {
	return []Benchmark{FMoW(), CIFAR10C(), TinyImageNetC(), FEMNIST(), FashionMNIST()}
}

// BenchmarkNames lists every preset name, for CLI validation and hints.
func BenchmarkNames() []string {
	bs := Benchmarks()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}

// BenchmarkByName resolves a preset.
func BenchmarkByName(name string) (Benchmark, error) {
	for _, b := range Benchmarks() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("experiments: unknown benchmark %q", name)
}

// Options control experiment scale. The zero value is invalid; use
// QuickOptions or PaperOptions.
type Options struct {
	// Scale multiplies party/sample counts (1 = paper scale).
	Scale float64
	// Seeds are the per-run seeds (the paper uses six).
	Seeds []uint64
	// BootstrapRounds / RoundsPerWindow / Participants / Epochs override
	// the training budget.
	BootstrapRounds int
	RoundsPerWindow int
	Participants    int
	Epochs          int
	// Workers bounds how many grid cells run concurrently; 0 means
	// runtime.GOMAXPROCS(0). Results are bit-identical for any value.
	Workers int
	// RoundWorkers bounds the per-round party-training fan-out inside each
	// cell; 0 lets the grid engine pick cores/Workers so a fully parallel
	// grid does not oversubscribe the CPU (a single cell still fans out
	// across every core). Results are bit-identical for any value.
	RoundWorkers int
}

// QuickOptions is a minutes-scale configuration used by tests and the
// default CLI run.
func QuickOptions() Options {
	return Options{
		Scale:           0.1,
		Seeds:           []uint64{1, 2},
		BootstrapRounds: 10,
		RoundsPerWindow: 10,
		Participants:    8,
		Epochs:          2,
	}
}

// PaperOptions approximates the paper's protocol (six seeds, full party
// counts); hours-scale on a laptop.
func PaperOptions() Options {
	return Options{
		Scale:           1,
		Seeds:           []uint64{1, 2, 3, 4, 5, 6},
		BootstrapRounds: 25,
		RoundsPerWindow: 25,
		Participants:    10,
		Epochs:          2,
	}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	switch {
	case o.Scale <= 0:
		return fmt.Errorf("experiments: scale must be positive, got %g", o.Scale)
	case len(o.Seeds) == 0:
		return fmt.Errorf("experiments: need at least one seed")
	case o.BootstrapRounds <= 0 || o.RoundsPerWindow <= 0:
		return fmt.Errorf("experiments: rounds must be positive")
	case o.Participants <= 0:
		return fmt.Errorf("experiments: participants must be positive")
	case o.Epochs <= 0:
		return fmt.Errorf("experiments: epochs must be positive")
	case o.Workers < 0:
		return fmt.Errorf("experiments: workers must be non-negative, got %d", o.Workers)
	case o.RoundWorkers < 0:
		return fmt.Errorf("experiments: round workers must be non-negative, got %d", o.RoundWorkers)
	}
	return nil
}

func (o Options) trainConfig() fl.TrainConfig {
	return fl.TrainConfig{Epochs: o.Epochs, BatchSize: 16, LR: 0.02, Momentum: 0.9}
}

// budget maps the options onto the shared training budget every registered
// technique is constructed with.
func (o Options) budget() adapt.Budget {
	return adapt.Budget{
		BootstrapRounds:      o.BootstrapRounds,
		RoundsPerWindow:      o.RoundsPerWindow,
		ParticipantsPerRound: o.Participants,
		Train:                o.trainConfig(),
	}
}

// TechniqueFactory creates a fresh technique instance per (benchmark, seed)
// run so runs stay independent.
type TechniqueFactory struct {
	// Name is the display name and grid-cell key: the registered technique
	// name, suffixed "@<policy>" for policy-swept variants
	// (e.g. "shiftex@exact-assign").
	Name string
	// Policy is the adaptation policy the factory constructs the technique
	// under; empty means the technique's default.
	Policy string
	New    func(seed uint64) (federation.Technique, error)
}

// techniqueFactory builds a grid factory for one (technique, policy) pair;
// construction goes through the central adapt registry.
func techniqueFactory(opts Options, name, policyName string) TechniqueFactory {
	display := name
	if policyName != "" {
		display = name + "@" + policyName
	}
	return TechniqueFactory{
		Name:   display,
		Policy: policyName,
		New: func(seed uint64) (federation.Technique, error) {
			return adapt.NewTechnique(name, opts.budget(), policyName, seed)
		},
	}
}

// StandardTechniques returns the registered comparison set (the paper's
// five methods, in the catalog's registration order) with matched training
// budgets, each under its default adaptation policy.
func StandardTechniques(opts Options) []TechniqueFactory {
	names := adapt.TechniqueNames()
	out := make([]TechniqueFactory, 0, len(names))
	for _, name := range names {
		out = append(out, techniqueFactory(opts, name, ""))
	}
	return out
}

// PolicyTechniques returns the -policy sweep set: every policied technique
// (shiftex) under each named adaptation policy, so one grid run compares
// policies on identical scenarios. Policy names are validated up front
// against the live registry.
func PolicyTechniques(opts Options, policyNames []string) ([]TechniqueFactory, error) {
	if len(policyNames) == 0 {
		return nil, errors.New("experiments: policy sweep needs at least one policy name")
	}
	seen := make(map[string]bool, len(policyNames))
	for _, p := range policyNames {
		// An empty entry (e.g. a trailing comma in -policy) would silently
		// resolve to the default policy and add an unrequested cell whose
		// artifact entry is indistinguishable from a standard run's.
		if p == "" {
			return nil, errors.New("experiments: empty policy name in sweep (trailing comma?)")
		}
		if seen[p] {
			return nil, fmt.Errorf("experiments: policy %q listed twice in sweep (duplicate cells would collide on their grid keys)", p)
		}
		seen[p] = true
		if _, err := adapt.NewPolicy(p); err != nil {
			return nil, err
		}
	}
	var out []TechniqueFactory
	for _, tech := range adapt.PoliciedTechniqueNames() {
		for _, p := range policyNames {
			out = append(out, techniqueFactory(opts, tech, p))
		}
	}
	if len(out) == 0 {
		return nil, errors.New("experiments: no policied technique registered")
	}
	return out, nil
}

// TechniqueNames lists the registered technique names, for CLI validation
// and hints.
func TechniqueNames() []string { return adapt.TechniqueNames() }

// PolicyNames lists the registered adaptation-policy names, for CLI
// validation and hints.
func PolicyNames() []string { return adapt.PolicyNames() }

// TechniqueByName resolves a single factory from "technique" or
// "technique@policy" form; unknown names error with the live registry
// listing.
func TechniqueByName(opts Options, name string) (TechniqueFactory, error) {
	base, policyName, hasPolicy := strings.Cut(name, "@")
	tf, err := adapt.Technique(base)
	if err != nil {
		return TechniqueFactory{}, err
	}
	if hasPolicy && policyName == "" {
		// "shiftex@" would resolve to the plain technique here but never
		// match any cell key — reject it instead of misleading the caller.
		return TechniqueFactory{}, fmt.Errorf("experiments: empty policy in %q (want technique@policy)", name)
	}
	if policyName != "" {
		if _, err := adapt.NewPolicy(policyName); err != nil {
			return TechniqueFactory{}, err
		}
		if !tf.Policied {
			// Mirror adapt.NewTechnique: the default policy is a no-op on a
			// policy-free technique, anything else is an error.
			if policyName != adapt.DefaultPolicyName {
				return TechniqueFactory{}, fmt.Errorf("experiments: technique %q is policy-free (cannot run policy %q)", base, policyName)
			}
			policyName = ""
		}
	}
	return techniqueFactory(opts, base, policyName), nil
}
