// Package experiments defines the paper's evaluation protocol (§6): the
// five benchmark scenarios, the matched training budgets for ShiftEx and
// the four baselines, the multi-seed runner, and formatters that regenerate
// every table and figure of the paper from measured data.
package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/federation"
	"repro/internal/fl"
	"repro/internal/shiftex"
)

// Benchmark is one dataset scenario preset.
type Benchmark struct {
	Name  string
	Spec  dataset.Spec
	Shift dataset.ShiftConfig
	// Hidden are the hidden-layer widths (embedding last); the input and
	// output widths come from the spec.
	Hidden []int
}

// Arch returns the full architecture for the benchmark.
func (b Benchmark) Arch() []int {
	arch := make([]int, 0, len(b.Hidden)+2)
	arch = append(arch, b.Spec.InputDim)
	arch = append(arch, b.Hidden...)
	arch = append(arch, b.Spec.NumClasses)
	return arch
}

// FMoW is the satellite-imagery benchmark: natural covariate diversity
// (weather families) plus label shift, tumbling windows, 50 parties.
func FMoW() Benchmark {
	shift := dataset.DefaultShiftConfig()
	shift.CovariateKinds = dataset.WeatherKinds()
	shift.LabelShift = true
	shift.RegimesPerWindow = 2
	shift.SeverityMin, shift.SeverityMax = 3, 5
	return Benchmark{Name: "fmow", Spec: dataset.FMoWSpec(), Shift: shift, Hidden: []int{32, 16}}
}

// CIFAR10C is the weather-corruption benchmark: 200 parties, sliding
// windows, few distinct corruption regimes (the paper observes a compact
// two-expert configuration).
func CIFAR10C() Benchmark {
	shift := dataset.DefaultShiftConfig()
	shift.CovariateKinds = []dataset.CorruptionKind{
		dataset.CorruptFog, dataset.CorruptRain, dataset.CorruptSnow, dataset.CorruptFrost,
	}
	shift.LabelShift = false
	shift.RegimesPerWindow = 1
	shift.SeverityMin, shift.SeverityMax = 3, 5
	return Benchmark{Name: "cifar10c", Spec: dataset.CIFAR10CSpec(), Shift: shift, Hidden: []int{32, 16}}
}

// TinyImageNetC is the many-class corruption benchmark with progressive
// corruption groups per window.
func TinyImageNetC() Benchmark {
	shift := dataset.DefaultShiftConfig()
	shift.CovariateKinds = dataset.WeatherKinds()
	shift.LabelShift = false
	shift.RegimesPerWindow = 2
	shift.SeverityMin, shift.SeverityMax = 3, 5
	return Benchmark{Name: "tinyimagenetc", Spec: dataset.TinyImageNetCSpec(), Shift: shift, Hidden: []int{48, 24}}
}

// FEMNIST is the handwritten-character benchmark: synthetic transforms plus
// Dirichlet label skew.
func FEMNIST() Benchmark {
	shift := dataset.DefaultShiftConfig()
	shift.CovariateKinds = dataset.SyntheticKinds()
	shift.LabelShift = true
	shift.DirichletAlpha = 0.5
	shift.RegimesPerWindow = 2
	shift.SeverityMin, shift.SeverityMax = 3, 5
	return Benchmark{Name: "femnist", Spec: dataset.FEMNISTSpec(), Shift: shift, Hidden: []int{40, 20}}
}

// FashionMNIST is the clothing benchmark: synthetic transforms plus
// Dirichlet label skew.
func FashionMNIST() Benchmark {
	shift := dataset.DefaultShiftConfig()
	shift.CovariateKinds = dataset.SyntheticKinds()
	shift.LabelShift = true
	shift.DirichletAlpha = 0.5
	shift.RegimesPerWindow = 2
	shift.SeverityMin, shift.SeverityMax = 3, 5
	return Benchmark{Name: "fashionmnist", Spec: dataset.FashionMNISTSpec(), Shift: shift, Hidden: []int{32, 16}}
}

// Benchmarks returns all five presets.
func Benchmarks() []Benchmark {
	return []Benchmark{FMoW(), CIFAR10C(), TinyImageNetC(), FEMNIST(), FashionMNIST()}
}

// BenchmarkNames lists every preset name, for CLI validation and hints.
func BenchmarkNames() []string {
	bs := Benchmarks()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}

// BenchmarkByName resolves a preset.
func BenchmarkByName(name string) (Benchmark, error) {
	for _, b := range Benchmarks() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("experiments: unknown benchmark %q", name)
}

// Options control experiment scale. The zero value is invalid; use
// QuickOptions or PaperOptions.
type Options struct {
	// Scale multiplies party/sample counts (1 = paper scale).
	Scale float64
	// Seeds are the per-run seeds (the paper uses six).
	Seeds []uint64
	// BootstrapRounds / RoundsPerWindow / Participants / Epochs override
	// the training budget.
	BootstrapRounds int
	RoundsPerWindow int
	Participants    int
	Epochs          int
	// Workers bounds how many grid cells run concurrently; 0 means
	// runtime.GOMAXPROCS(0). Results are bit-identical for any value.
	Workers int
	// RoundWorkers bounds the per-round party-training fan-out inside each
	// cell; 0 lets the grid engine pick cores/Workers so a fully parallel
	// grid does not oversubscribe the CPU (a single cell still fans out
	// across every core). Results are bit-identical for any value.
	RoundWorkers int
}

// QuickOptions is a minutes-scale configuration used by tests and the
// default CLI run.
func QuickOptions() Options {
	return Options{
		Scale:           0.1,
		Seeds:           []uint64{1, 2},
		BootstrapRounds: 10,
		RoundsPerWindow: 10,
		Participants:    8,
		Epochs:          2,
	}
}

// PaperOptions approximates the paper's protocol (six seeds, full party
// counts); hours-scale on a laptop.
func PaperOptions() Options {
	return Options{
		Scale:           1,
		Seeds:           []uint64{1, 2, 3, 4, 5, 6},
		BootstrapRounds: 25,
		RoundsPerWindow: 25,
		Participants:    10,
		Epochs:          2,
	}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	switch {
	case o.Scale <= 0:
		return fmt.Errorf("experiments: scale must be positive, got %g", o.Scale)
	case len(o.Seeds) == 0:
		return fmt.Errorf("experiments: need at least one seed")
	case o.BootstrapRounds <= 0 || o.RoundsPerWindow <= 0:
		return fmt.Errorf("experiments: rounds must be positive")
	case o.Participants <= 0:
		return fmt.Errorf("experiments: participants must be positive")
	case o.Epochs <= 0:
		return fmt.Errorf("experiments: epochs must be positive")
	case o.Workers < 0:
		return fmt.Errorf("experiments: workers must be non-negative, got %d", o.Workers)
	case o.RoundWorkers < 0:
		return fmt.Errorf("experiments: round workers must be non-negative, got %d", o.RoundWorkers)
	}
	return nil
}

func (o Options) trainConfig() fl.TrainConfig {
	return fl.TrainConfig{Epochs: o.Epochs, BatchSize: 16, LR: 0.02, Momentum: 0.9}
}

// TechniqueFactory creates a fresh technique instance per (benchmark, seed)
// run so runs stay independent.
type TechniqueFactory struct {
	Name string
	New  func(seed uint64) (federation.Technique, error)
}

// StandardTechniques returns the five methods of the paper's comparison
// with matched training budgets.
func StandardTechniques(opts Options) []TechniqueFactory {
	shiftexCfg := func() shiftex.Config {
		cfg := shiftex.DefaultConfig()
		cfg.BootstrapRounds = opts.BootstrapRounds
		cfg.RoundsPerWindow = opts.RoundsPerWindow
		cfg.ParticipantsPerRound = opts.Participants
		cfg.Train = opts.trainConfig()
		return cfg
	}
	baseCfg := func() baselines.Config {
		return baselines.Config{
			BootstrapRounds:      opts.BootstrapRounds,
			RoundsPerWindow:      opts.RoundsPerWindow,
			ParticipantsPerRound: opts.Participants,
			Train:                opts.trainConfig(),
		}
	}
	return []TechniqueFactory{
		{Name: "shiftex", New: func(seed uint64) (federation.Technique, error) {
			return shiftex.New(shiftexCfg(), seed)
		}},
		{Name: "fedprox", New: func(seed uint64) (federation.Technique, error) {
			return baselines.NewFedProx(baseCfg(), 0.1, seed)
		}},
		{Name: "oort", New: func(seed uint64) (federation.Technique, error) {
			return baselines.NewOORT(baseCfg(), 0.2, seed)
		}},
		{Name: "fielding", New: func(seed uint64) (federation.Technique, error) {
			return baselines.NewFielding(baseCfg(), 5, seed)
		}},
		{Name: "feddrift", New: func(seed uint64) (federation.Technique, error) {
			return baselines.NewFedDrift(baseCfg(), 1.5, 6, seed)
		}},
	}
}

// TechniqueNames lists the standard technique names, for CLI validation
// and hints.
func TechniqueNames() []string {
	tfs := StandardTechniques(PaperOptions())
	names := make([]string, len(tfs))
	for i, tf := range tfs {
		names[i] = tf.Name
	}
	return names
}

// TechniqueByName resolves a single factory.
func TechniqueByName(opts Options, name string) (TechniqueFactory, error) {
	for _, tf := range StandardTechniques(opts) {
		if tf.Name == name {
			return tf, nil
		}
	}
	return TechniqueFactory{}, fmt.Errorf("experiments: unknown technique %q", name)
}
