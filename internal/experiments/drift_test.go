package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func validDriftArtifact() *DriftArtifact {
	return &DriftArtifact{
		Schema: DriftSchemaVersion,
		Name:   DriftArtifactName,
		Options: DriftOptions{
			CheckpointWindows: 4,
			Arch:              []int{32, 128, 64, 10},
			Parties:           8,
			SamplesPerParty:   40,
			TestPerParty:      20,
			Seed:              42,
			Concurrency:       8,
			Repeat:            300,
			Workers:           2,
			MaxBatch:          16,
			MaxDelayMs:        0.2,
			ShiftAt:           0.5,
			ShiftKind:         "frost",
			ShiftSeverity:     5,
			EvalEvery:         2048,
			BaselineSize:      256,
			WindowSize:        128,
			Threshold:         2,
			Trials:            3,
		},
		BaselineRequests:          48000,
		BaselineDurationMs:        700,
		BaselineThroughputPerSec:  68000,
		MonitoredRequests:         48000,
		MonitoredDurationMs:       710,
		MonitoredThroughputPerSec: 67000,
		OverheadPercent:           1.47,
		SamplesSeen:               47000,
		SamplesDropped:            120,
		Evals:                     22,
		ShiftAtSample:             23500,
		DetectedAtSample:          26000,
		DetectionLatencySamples:   2500,
		Detected:                  true,
		FalsePositives:            0,
		Delta:                     0.013,
		ScoreAtDetection:          3.4,
		MaxScore:                  5.1,
	}
}

func TestDriftArtifactRoundTrip(t *testing.T) {
	a := validDriftArtifact()
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDriftArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, a)
	}
}

func TestDriftArtifactRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeDriftArtifact(strings.NewReader(`{"schema":1,"name":"drift","bogus":true}`)); err == nil {
		t.Fatal("expected unknown-field error")
	}
}

func TestDriftArtifactValidate(t *testing.T) {
	for name, mutate := range map[string]func(*DriftArtifact){
		"wrong schema":         func(a *DriftArtifact) { a.Schema = 99 },
		"wrong name":           func(a *DriftArtifact) { a.Name = "tracing" },
		"shiftAt out of range": func(a *DriftArtifact) { a.Options.ShiftAt = 1 },
		"no baseline":          func(a *DriftArtifact) { a.BaselineRequests = 0 },
		"no monitored":         func(a *DriftArtifact) { a.MonitoredRequests = 0 },
		"no throughput":        func(a *DriftArtifact) { a.MonitoredThroughputPerSec = 0 },
		"no samples":           func(a *DriftArtifact) { a.SamplesSeen = 0 },
		"no evals":             func(a *DriftArtifact) { a.Evals = 0 },
		"degenerate delta":     func(a *DriftArtifact) { a.Delta = 0 },
		"detection before shift": func(a *DriftArtifact) {
			a.DetectedAtSample = a.ShiftAtSample
		},
		"inconsistent latency": func(a *DriftArtifact) { a.DetectionLatencySamples++ },
	} {
		a := validDriftArtifact()
		mutate(a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
	if err := validDriftArtifact().Validate(); err != nil {
		t.Errorf("valid artifact rejected: %v", err)
	}
	// An undetected run is structurally valid (the gate, not Validate,
	// rejects it) — detection-consistency checks only bind when Detected.
	a := validDriftArtifact()
	a.Detected = false
	a.DetectedAtSample, a.DetectionLatencySamples, a.ScoreAtDetection = 0, 0, 0
	if err := a.Validate(); err != nil {
		t.Errorf("undetected artifact rejected: %v", err)
	}
}

func TestDriftArtifactCheckDrift(t *testing.T) {
	a := validDriftArtifact()
	if err := a.CheckDrift(3); err != nil {
		t.Errorf("valid artifact should pass a 3%% gate: %v", err)
	}
	a.OverheadPercent = 7.2
	if err := a.CheckDrift(3); err == nil {
		t.Error("7.2% overhead should fail a 3% gate")
	}
	a = validDriftArtifact()
	a.Detected = false
	if err := a.CheckDrift(3); err == nil {
		t.Error("undetected shift should fail the gate")
	}
	a = validDriftArtifact()
	a.FalsePositives = 2
	if err := a.CheckDrift(3); err == nil {
		t.Error("pre-shift crossings should fail the gate")
	}
	// Negative overhead (monitored faster than baseline, i.e. noise)
	// passes.
	a = validDriftArtifact()
	a.OverheadPercent = -0.3
	if err := a.CheckDrift(3); err != nil {
		t.Errorf("negative overhead should pass: %v", err)
	}
}
