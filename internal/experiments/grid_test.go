package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/metrics"
)

// gridOptions is the smallest workload that still exercises every window:
// 5 parties on the FMoW preset, 3 rounds per window.
func gridOptions() Options {
	return Options{
		Scale:           0.1,
		Seeds:           []uint64{1, 2},
		BootstrapRounds: 3,
		RoundsPerWindow: 3,
		Participants:    3,
		Epochs:          1,
	}
}

// cheapTechniques picks the two fastest methods for grid-engine tests.
func cheapTechniques(t *testing.T, opts Options) []TechniqueFactory {
	t.Helper()
	var tfs []TechniqueFactory
	for _, name := range []string{"fedprox", "fielding"} {
		tf, err := TechniqueByName(opts, name)
		if err != nil {
			t.Fatal(err)
		}
		tfs = append(tfs, tf)
	}
	return tfs
}

// comparable strips the wall-clock and the factory closures (func values
// never compare equal) down to the value-comparable core of each cell.
type comparableCell struct {
	Key    string
	Index  int
	Result metrics.RunResult
	Err    error
}

func comparableCells(cells []CellResult) []comparableCell {
	out := make([]comparableCell, len(cells))
	for i, cr := range cells {
		out[i] = comparableCell{Key: cr.Cell.Key(), Index: cr.Index, Result: cr.Result, Err: cr.Err}
	}
	return out
}

// TestGridParitySerialVsParallel is the seed-splitting contract: the same
// grid run with 1 worker and with 8 workers must produce bit-identical
// RunResults, and both must match the plain serial Run loop. It covers all
// five techniques — every one must be deterministic for the full-grid
// BENCH artifacts to reproduce. CI runs this under -race.
func TestGridParitySerialVsParallel(t *testing.T) {
	opts := gridOptions()
	g := Grid{Benchmarks: []Benchmark{FMoW()}, Techniques: StandardTechniques(opts), Options: opts}

	serialCells, err := RunGrid(context.Background(), g, Pool{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallelCells, err := RunGrid(context.Background(), g, Pool{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(comparableCells(serialCells), comparableCells(parallelCells)) {
		t.Fatal("parallel grid results differ from serial grid results")
	}

	// Both must equal the pre-grid serial path: Run called cell by cell.
	for i, cell := range g.Cells() {
		want, err := Run(cell.Benchmark, cell.Technique, opts, cell.Seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, parallelCells[i].Result) {
			t.Fatalf("cell %s: pooled result differs from direct Run", cell.Key())
		}
	}
}

func TestGridCellsOrderAndFilter(t *testing.T) {
	opts := gridOptions()
	tfs := cheapTechniques(t, opts)
	g := Grid{Benchmarks: []Benchmark{FMoW(), CIFAR10C()}, Techniques: tfs, Options: opts}
	cells := g.Cells()
	if len(cells) != 2*2*2 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	// Benchmark-major, then technique, then seed.
	wantKeys := []string{
		"fmow/fedprox/1", "fmow/fedprox/2", "fmow/fielding/1", "fmow/fielding/2",
		"cifar10c/fedprox/1", "cifar10c/fedprox/2", "cifar10c/fielding/1", "cifar10c/fielding/2",
	}
	for i, c := range cells {
		if c.Key() != wantKeys[i] {
			t.Fatalf("cell %d = %s, want %s", i, c.Key(), wantKeys[i])
		}
	}

	g.Filter = func(c Cell) bool { return c.Technique.Name == "fielding" && c.Seed == 2 }
	cells = g.Cells()
	if len(cells) != 2 {
		t.Fatalf("filtered cells = %d, want 2", len(cells))
	}
	for _, c := range cells {
		if c.Technique.Name != "fielding" || c.Seed != 2 {
			t.Fatalf("filter leaked cell %s", c.Key())
		}
	}
}

func TestGridProgressCallback(t *testing.T) {
	opts := gridOptions()
	g := Grid{Benchmarks: []Benchmark{FMoW()}, Techniques: cheapTechniques(t, opts), Options: opts}
	var seen []string
	cells, err := RunGrid(context.Background(), g, Pool{Workers: 4, OnCell: func(cr CellResult) {
		// OnCell calls are serialized, so this append needs no lock even
		// under -race.
		seen = append(seen, cr.Cell.Key())
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(cells) {
		t.Fatalf("callback fired %d times for %d cells", len(seen), len(cells))
	}
	uniq := map[string]bool{}
	for _, k := range seen {
		uniq[k] = true
	}
	if len(uniq) != len(cells) {
		t.Fatalf("callback keys not unique: %v", seen)
	}
}

func TestGridCancelledBeforeStart(t *testing.T) {
	opts := gridOptions()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := Grid{Benchmarks: []Benchmark{FMoW()}, Techniques: cheapTechniques(t, opts), Options: opts}
	start := time.Now()
	cells, err := RunGrid(ctx, g, Pool{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled grid still ran for %v", elapsed)
	}
	for _, cr := range cells {
		if !errors.Is(cr.Err, ErrCellSkipped) {
			t.Fatalf("cell %s ran despite pre-cancelled context", cr.Cell.Key())
		}
	}
}

func TestGridCancelMidRun(t *testing.T) {
	opts := gridOptions()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := Grid{Benchmarks: []Benchmark{FMoW()}, Techniques: cheapTechniques(t, opts), Options: opts}
	fired := 0
	cells, err := RunGrid(ctx, g, Pool{Workers: 1, OnCell: func(CellResult) {
		fired++
		cancel()
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	finished := 0
	for _, cr := range cells {
		if cr.Err == nil {
			finished++
		} else if !errors.Is(cr.Err, ErrCellSkipped) {
			t.Fatalf("cell %s: unexpected error %v", cr.Cell.Key(), cr.Err)
		}
	}
	if finished == len(cells) {
		t.Fatal("cancellation after the first cell should skip later cells")
	}
	if finished != fired {
		t.Fatalf("finished %d cells but callback fired %d times", finished, fired)
	}
}

func TestGridEmptyAndInvalid(t *testing.T) {
	opts := gridOptions()
	g := Grid{Benchmarks: []Benchmark{FMoW()}, Options: opts, Filter: func(Cell) bool { return false }}
	if _, err := RunGrid(context.Background(), g, Pool{}); err == nil {
		t.Fatal("empty grid should error")
	}
	bad := opts
	bad.Workers = -1
	if _, err := RunGrid(context.Background(), Grid{Benchmarks: []Benchmark{FMoW()}, Options: bad}, Pool{}); err == nil {
		t.Fatal("invalid options should error")
	}
}

func TestCompareGridMatchesCompare(t *testing.T) {
	opts := gridOptions()
	tfs := cheapTechniques(t, opts)
	cmp, cells, err := CompareGrid(context.Background(), FMoW(), opts, Pool{Workers: 4}, tfs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(tfs)*len(opts.Seeds) {
		t.Fatalf("cells = %d", len(cells))
	}
	if len(cmp.Order) != 2 || cmp.Order[0] != "fedprox" || cmp.Order[1] != "fielding" {
		t.Fatalf("order = %v", cmp.Order)
	}
	for _, name := range cmp.Order {
		runs := cmp.Results[name]
		if len(runs) != len(opts.Seeds) {
			t.Fatalf("%s runs = %d", name, len(runs))
		}
		for i, run := range runs {
			if run.Seed != opts.Seeds[i] {
				t.Fatalf("%s run %d seed = %d, want %d (seed order must match serial path)", name, i, run.Seed, opts.Seeds[i])
			}
		}
	}
}

func TestSplitSeeds(t *testing.T) {
	a := SplitSeeds(42, 6)
	b := SplitSeeds(42, 6)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SplitSeeds must be deterministic")
	}
	uniq := map[uint64]bool{}
	for _, s := range a {
		uniq[s] = true
	}
	if len(uniq) != 6 {
		t.Fatalf("seeds not distinct: %v", a)
	}
	if c := SplitSeeds(43, 6); reflect.DeepEqual(a, c) {
		t.Fatal("different bases must yield different seeds")
	}
}
