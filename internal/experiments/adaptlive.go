package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AdaptLiveSchemaVersion is bumped whenever the BENCH_adapt-live.json
// layout changes incompatibly; decoders reject other versions.
const AdaptLiveSchemaVersion = 1

// AdaptLiveArtifactName keys the closed-loop adaptation benchmark's
// artifact file (BENCH_adapt-live.json via ArtifactFileName).
const AdaptLiveArtifactName = "adapt-live"

// AdaptLiveOptions records the protocol of one closed-loop run: a cold
// (cache-disabled) serving workload whose regime flips mid-stream, with
// the continual controller armed to detect the shift, run a live
// adaptation window, and hot-swap the adapted snapshot.
type AdaptLiveOptions struct {
	CheckpointWindows int    `json:"checkpointWindows"`
	Parties           int    `json:"parties"`
	SamplesPerParty   int    `json:"samplesPerParty"`
	TestPerParty      int    `json:"testPerParty"`
	Seed              uint64 `json:"seed"`
	Concurrency       int    `json:"concurrency"`

	ShiftKind     string `json:"shiftKind"`     // corruption name (dataset.Corruption.String)
	ShiftSeverity int    `json:"shiftSeverity"` // corruption severity 1..5

	EvalEvery    int     `json:"evalEvery"`    // monitor: folded samples between drift evaluations
	BaselineSize int     `json:"baselineSize"` // monitor: frozen pre-shift reservoir size
	WindowSize   int     `json:"windowSize"`   // monitor: recent-embedding window size
	Threshold    float64 `json:"threshold"`    // monitor: crossing threshold on the calibrated score
	Resamples    int     `json:"resamples"`    // monitor: bootstrap resamples calibrating δ

	Hysteresis           int     `json:"hysteresis"`           // consecutive crossed evals arming a trigger
	CooldownMs           float64 `json:"cooldownMs"`           // post-window refractory period
	ValidationMinSamples int     `json:"validationMinSamples"` // promotion gate sample floor
	ValidationDisabled   bool    `json:"validationDisabled"`
}

// AdaptLiveArtifact is the versioned record of one closed-loop continual
// adaptation benchmark — the proof that the serving tier reacts to a live
// regime change end to end: the injected shift is detected, a real
// adaptation window runs against the live sketches, the adapted snapshot
// hot-swaps without dropping a request, and the shifted traffic's routing
// quality recovers over the frozen baseline.
type AdaptLiveArtifact struct {
	Schema  int              `json:"schema"`
	Name    string           `json:"name"`
	Options AdaptLiveOptions `json:"options"`

	// Closed-loop phase traffic record.
	Requests         uint64  `json:"requests"`
	Errors           uint64  `json:"errors"`
	Rejected         uint64  `json:"rejected"`
	DurationMs       float64 `json:"durationMs"`
	ThroughputPerSec float64 `json:"throughputPerSec"`

	// Detection record, in the monitor's teed-sample clock.
	ShiftAtSample           uint64  `json:"shiftAtSample"` // teed watermark at injection
	Detected                bool    `json:"detected"`
	DetectedAtSample        uint64  `json:"detectedAtSample,omitempty"`
	DetectionLatencySamples uint64  `json:"detectionLatencySamples,omitempty"`
	ScoreAtDetection        float64 `json:"scoreAtDetection,omitempty"`

	// Adaptation window record.
	WindowsCompleted  uint64  `json:"windowsCompleted"`
	WindowsRolledBack uint64  `json:"windowsRolledBack"`
	WindowsRejected   uint64  `json:"windowsRejected"`
	WindowDurationMs  float64 `json:"windowDurationMs,omitempty"`
	// AdaptLatencyMs is wall time from shift injection to the post-swap
	// snapshot being live — the end-to-end reaction time of the loop.
	AdaptLatencyMs     float64 `json:"adaptLatencyMs,omitempty"`
	SwappedFromVersion int     `json:"swappedFromVersion"`
	SwappedToVersion   int     `json:"swappedToVersion"`
	ShiftedParties     int     `json:"shiftedParties"`
	NewExperts         int     `json:"newExperts"`
	Merged             int     `json:"merged"`
	ExpertsBefore      int     `json:"expertsBefore"`
	ExpertsAfter       int     `json:"expertsAfter"`

	// Promotion-gate record (zero when validation was disabled or abstained).
	ValidationSamples          int     `json:"validationSamples"`
	ValidationBaselineMatched  float64 `json:"validationBaselineMatched"`
	ValidationCandidateMatched float64 `json:"validationCandidateMatched"`

	// Recovery record: the same shifted stream scored against the frozen
	// snapshot (before the loop ran) and against the adapted snapshot
	// (after the swap). Routed is the fraction of requests routed to the
	// expert assigned to the originating party — against the checkpoint
	// assignment for the frozen pass, against the post-window assignment
	// for the adapted pass.
	EvalRequests            int     `json:"evalRequests"`
	FrozenShiftedRouted     float64 `json:"frozenShiftedRouted"`
	FrozenShiftedAccuracy   float64 `json:"frozenShiftedAccuracy"`
	PostSwapShiftedRouted   float64 `json:"postSwapShiftedRouted"`
	PostSwapShiftedAccuracy float64 `json:"postSwapShiftedAccuracy"`
}

// Validate checks schema version and structural coherence.
func (a *AdaptLiveArtifact) Validate() error {
	switch {
	case a.Schema != AdaptLiveSchemaVersion:
		return fmt.Errorf("experiments: adapt-live artifact schema %d, want %d", a.Schema, AdaptLiveSchemaVersion)
	case a.Name != AdaptLiveArtifactName:
		return fmt.Errorf("experiments: adapt-live artifact name %q, want %q", a.Name, AdaptLiveArtifactName)
	case a.Requests == 0:
		return errors.New("experiments: adapt-live artifact records no closed-loop requests")
	case a.EvalRequests == 0:
		return errors.New("experiments: adapt-live artifact records no evaluation requests")
	case a.Detected && a.DetectedAtSample <= a.ShiftAtSample:
		return fmt.Errorf("experiments: adapt-live artifact claims detection at sample %d, at or before the shift watermark %d",
			a.DetectedAtSample, a.ShiftAtSample)
	case a.Detected && a.DetectionLatencySamples != a.DetectedAtSample-a.ShiftAtSample:
		return fmt.Errorf("experiments: adapt-live artifact latency %d inconsistent with detection %d - watermark %d",
			a.DetectionLatencySamples, a.DetectedAtSample, a.ShiftAtSample)
	case a.WindowsCompleted > 0 && a.SwappedToVersion <= a.SwappedFromVersion:
		return fmt.Errorf("experiments: adapt-live artifact completed a window but the snapshot version never advanced (%d → %d)",
			a.SwappedFromVersion, a.SwappedToVersion)
	}
	return nil
}

// CheckAdaptLive enforces the CI gate: the closed loop must have worked end
// to end — injected shift detected, at least one adaptation window completed
// and hot-swapped with zero dropped requests, and the shifted regime's
// routing quality strictly improved over the frozen baseline.
func (a *AdaptLiveArtifact) CheckAdaptLive() error {
	switch {
	case !a.Detected:
		return errors.New("experiments: adapt-live run never detected the injected shift")
	case a.WindowsCompleted == 0:
		return fmt.Errorf("experiments: adapt-live run completed no adaptation window (rolled back %d, rejected %d)",
			a.WindowsRolledBack, a.WindowsRejected)
	case a.SwappedToVersion <= a.SwappedFromVersion:
		return fmt.Errorf("experiments: adapt-live run never advanced the serving snapshot (version %d → %d)",
			a.SwappedFromVersion, a.SwappedToVersion)
	case a.Errors != 0 || a.Rejected != 0:
		return fmt.Errorf("experiments: adapt-live run dropped requests across the swap (%d errors, %d rejected)",
			a.Errors, a.Rejected)
	case a.PostSwapShiftedRouted <= a.FrozenShiftedRouted:
		return fmt.Errorf("experiments: post-swap shifted routing %.3f does not improve on the frozen baseline %.3f",
			a.PostSwapShiftedRouted, a.FrozenShiftedRouted)
	}
	return nil
}

// Encode writes the artifact as indented, newline-terminated JSON.
func (a *AdaptLiveArtifact) Encode(w io.Writer) error {
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: encode adapt-live artifact: %w", err)
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// DecodeAdaptLiveArtifact reads and validates one adapt-live artifact.
// Unknown fields are rejected so schema drift fails loudly.
func DecodeAdaptLiveArtifact(r io.Reader) (*AdaptLiveArtifact, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var a AdaptLiveArtifact
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("experiments: decode adapt-live artifact: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// WriteAdaptLiveArtifactFile encodes the artifact into dir under the
// canonical BENCH_adapt-live.json name and returns the written path.
func WriteAdaptLiveArtifactFile(dir string, a *AdaptLiveArtifact) (string, error) {
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		return "", err
	}
	path := filepath.Join(dir, ArtifactFileName(a.Name))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return "", fmt.Errorf("experiments: write adapt-live artifact: %w", err)
	}
	return path, nil
}

// ReadAdaptLiveArtifactFile decodes one adapt-live artifact from disk.
func ReadAdaptLiveArtifactFile(path string) (*AdaptLiveArtifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: read adapt-live artifact: %w", err)
	}
	defer f.Close()
	return DecodeAdaptLiveArtifact(f)
}
