package experiments

import (
	"errors"
	"fmt"
)

// The headline grid is the repo's standing perf baseline: every benchmark ×
// every technique × the quick-protocol seeds, recorded as one
// BENCH_headline.json artifact whose per-cell wall-clock fields are the
// numbers future performance PRs diff against. The committed baseline keeps
// its timing (unlike -deterministic artifacts); CI regenerates it on every
// push and warns when the total regresses.

// HeadlineName is the artifact name of the perf baseline grid.
const HeadlineName = "headline"

// HeadlineOptions returns the protocol of the committed perf baseline.
func HeadlineOptions() Options { return QuickOptions() }

// HeadlineGrid expands to the full benchmark × technique × seed cross
// product at the given options.
func HeadlineGrid(opts Options) Grid {
	return Grid{Benchmarks: Benchmarks(), Options: opts}
}

// HeadlineArtifact assembles all finished cells of a headline run into the
// single cross-benchmark artifact (cells keep their per-benchmark tags).
func HeadlineArtifact(opts Options, cells []CellResult) *Artifact {
	return NewArtifact(HeadlineName, opts, cells)
}

// TotalWallClockMS sums the artifact's per-cell wall-clock fields. It
// errors when the artifact carries no timing (e.g. written with
// -deterministic): such an artifact cannot serve as a perf baseline.
func (a *Artifact) TotalWallClockMS() (float64, error) {
	var total float64
	for _, c := range a.Cells {
		total += c.WallClockMS
	}
	if total <= 0 {
		return 0, errors.New("experiments: artifact has no wall-clock data (timing stripped?)")
	}
	return total, nil
}

// Equal reports whether two artifacts recorded the same experiment
// protocol. Wall-time comparisons across different protocols are
// meaningless, so CompareWallClock refuses them.
func (o ArtifactOptions) Equal(p ArtifactOptions) bool {
	if o.Scale != p.Scale || o.BootstrapRounds != p.BootstrapRounds ||
		o.RoundsPerWindow != p.RoundsPerWindow || o.Participants != p.Participants ||
		o.Epochs != p.Epochs || len(o.Seeds) != len(p.Seeds) {
		return false
	}
	for i, s := range o.Seeds {
		if s != p.Seeds[i] {
			return false
		}
	}
	return true
}

// CompareWallClock reports how a fresh run's total wall time compares to a
// recorded baseline artifact: the ratio new/old and a human-readable
// verdict. tolerance is the fractional regression allowed before the
// verdict flags a slowdown (e.g. 0.2 = warn beyond +20%). The fresh run's
// artifact must record the same protocol as the baseline — a run at a
// different scale/seed set would make the ratio meaningless (and a
// committed baseline at the wrong protocol would poison every later
// comparison).
func CompareWallClock(baseline, fresh *Artifact, tolerance float64) (ratio float64, regressed bool, summary string, err error) {
	if !baseline.Options.Equal(fresh.Options) {
		return 0, false, "", fmt.Errorf("experiments: protocol mismatch: baseline ran %+v, this run %+v (pass matching -scale/-seeds/-rounds or drop -against)",
			baseline.Options, fresh.Options)
	}
	newTotal, err := fresh.TotalWallClockMS()
	if err != nil {
		return 0, false, "", fmt.Errorf("experiments: fresh run: %w", err)
	}
	oldTotal, err := baseline.TotalWallClockMS()
	if err != nil {
		return 0, false, "", err
	}
	ratio = newTotal / oldTotal
	regressed = ratio > 1+tolerance
	summary = fmt.Sprintf("headline wall time %.0fms vs baseline %.0fms (%.2fx)", newTotal, oldTotal, ratio)
	return ratio, regressed, summary, nil
}
