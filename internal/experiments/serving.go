package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ServingSchemaVersion is bumped whenever the BENCH_serving.json layout
// changes incompatibly; decoders reject other versions.
const ServingSchemaVersion = 1

// ServingArtifactName keys the serving benchmark's artifact file
// (BENCH_serving.json via ArtifactFileName).
const ServingArtifactName = "serving"

// ServingColdArtifactName keys the cold-traffic variant
// (BENCH_serving-cold.json): the same protocol with the route cache
// disabled, so every request pays the full batched routing + inference
// path. The warm artifact's throughput is dominated by cache hits; the
// cold one is the honest compute-throughput number.
const ServingColdArtifactName = "serving-cold"

// ServingOptions records the load-generation protocol: the checkpoint the
// server ran from, the regenerated scenario shape, and the pipeline knobs.
// Unlike grid ArtifactOptions, most serving results (throughput, latency)
// are inherently machine-dependent, so there is no StripTiming analogue —
// the artifact is a performance record, not a determinism contract.
type ServingOptions struct {
	CheckpointWindows int     `json:"checkpointWindows"` // stream position the snapshot was taken at
	Parties           int     `json:"parties"`
	SamplesPerParty   int     `json:"samplesPerParty"`
	TestPerParty      int     `json:"testPerParty"`
	Seed              uint64  `json:"seed"`
	TargetQPS         float64 `json:"targetQps"` // 0 = open loop (as fast as possible)
	Concurrency       int     `json:"concurrency"`
	Repeat            int     `json:"repeat"`
	Workers           int     `json:"workers"`
	MaxBatch          int     `json:"maxBatch"`
	MaxDelayMs        float64 `json:"maxDelayMs"`
	CacheSize         int     `json:"cacheSize"`
	RouteEpsilonScale float64 `json:"routeEpsilonScale"`
	SwapMidLoad       bool    `json:"swapMidLoad"`
	// ColdTraffic marks a run with the route cache disabled (CacheSize
	// < 0): every request was routed through the encoder. Mirrors the
	// "serving-cold" artifact name; Validate cross-checks the two.
	ColdTraffic bool `json:"coldTraffic,omitempty"`
}

// ServingRegime is one covariate regime's serving quality: how accurately
// its requests were predicted and how often they were routed to the expert
// the training run had assigned to their party — the per-regime routing
// accuracy under injected shift.
type ServingRegime struct {
	Regime           string  `json:"regime"` // e.g. "clean", "fog:3"
	Requests         int     `json:"requests"`
	Accuracy         float64 `json:"accuracy"`
	RoutedToAssigned float64 `json:"routedToAssigned"`
	MatchedFraction  float64 `json:"matchedFraction"` // latent-memory match (vs fallback) rate
}

// ServingArtifact is the versioned, machine-readable record of one serving
// load-generation run: aggregate throughput, latency quantiles, prediction
// accuracy, and per-regime routing quality.
type ServingArtifact struct {
	Schema  int            `json:"schema"`
	Name    string         `json:"name"`
	Options ServingOptions `json:"options"`

	Requests         uint64  `json:"requests"` // completed predictions
	Errors           uint64  `json:"errors"`
	Rejected         uint64  `json:"rejected"` // admission-queue rejections
	DurationMs       float64 `json:"durationMs"`
	ThroughputPerSec float64 `json:"throughputPerSec"`

	LatencyMsP50 float64 `json:"latencyMsP50"`
	LatencyMsP90 float64 `json:"latencyMsP90"`
	LatencyMsP99 float64 `json:"latencyMsP99"`
	LatencyMsMax float64 `json:"latencyMsMax"`

	Accuracy         float64 `json:"accuracy"`
	RoutedToAssigned float64 `json:"routedToAssigned"`
	CacheHitRate     float64 `json:"cacheHitRate"`
	Swaps            uint64  `json:"swaps"`
	MeanBatch        float64 `json:"meanBatch"`

	Regimes []ServingRegime `json:"regimes"`
}

// Validate checks schema version and structural coherence.
func (a *ServingArtifact) Validate() error {
	switch {
	case a.Schema != ServingSchemaVersion:
		return fmt.Errorf("experiments: serving artifact schema %d, want %d", a.Schema, ServingSchemaVersion)
	case a.Name != ServingArtifactName && a.Name != ServingColdArtifactName:
		return fmt.Errorf("experiments: serving artifact name %q, want %q or %q", a.Name, ServingArtifactName, ServingColdArtifactName)
	case a.Options.ColdTraffic != (a.Name == ServingColdArtifactName):
		return fmt.Errorf("experiments: serving artifact name %q disagrees with coldTraffic=%v", a.Name, a.Options.ColdTraffic)
	case a.Requests == 0:
		return errors.New("experiments: serving artifact records no completed requests")
	case a.DurationMs <= 0:
		return errors.New("experiments: serving artifact has no duration")
	case len(a.Regimes) == 0:
		return errors.New("experiments: serving artifact has no per-regime breakdown")
	}
	for i, r := range a.Regimes {
		if r.Regime == "" {
			return fmt.Errorf("experiments: serving regime %d has no name", i)
		}
		if r.Requests <= 0 {
			return fmt.Errorf("experiments: serving regime %q records no requests", r.Regime)
		}
	}
	return nil
}

// Encode writes the artifact as indented, newline-terminated JSON.
func (a *ServingArtifact) Encode(w io.Writer) error {
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: encode serving artifact: %w", err)
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// DecodeServingArtifact reads and validates one serving artifact. Unknown
// fields are rejected so schema drift fails loudly.
func DecodeServingArtifact(r io.Reader) (*ServingArtifact, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var a ServingArtifact
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("experiments: decode serving artifact: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// WriteServingArtifactFile encodes the artifact into dir under the
// canonical BENCH_serving.json name and returns the written path.
func WriteServingArtifactFile(dir string, a *ServingArtifact) (string, error) {
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		return "", err
	}
	path := filepath.Join(dir, ArtifactFileName(a.Name))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return "", fmt.Errorf("experiments: write serving artifact: %w", err)
	}
	return path, nil
}

// ReadServingArtifactFile decodes one serving artifact from disk.
func ReadServingArtifactFile(path string) (*ServingArtifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: read serving artifact: %w", err)
	}
	defer f.Close()
	return DecodeServingArtifact(f)
}
