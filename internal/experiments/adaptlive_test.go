package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func goodAdaptLive() *AdaptLiveArtifact {
	return &AdaptLiveArtifact{
		Schema:                  AdaptLiveSchemaVersion,
		Name:                    AdaptLiveArtifactName,
		Requests:                1000,
		ShiftAtSample:           400,
		Detected:                true,
		DetectedAtSample:        900,
		DetectionLatencySamples: 500,
		ScoreAtDetection:        6.5,
		WindowsCompleted:        1,
		SwappedFromVersion:      1,
		SwappedToVersion:        2,
		NewExperts:              1,
		ExpertsBefore:           4,
		ExpertsAfter:            5,
		EvalRequests:            320,
		FrozenShiftedRouted:     0.48,
		FrozenShiftedAccuracy:   0.02,
		PostSwapShiftedRouted:   0.59,
		PostSwapShiftedAccuracy: 0.17,
	}
}

func TestAdaptLiveArtifactRoundTrip(t *testing.T) {
	a := goodAdaptLive()
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAdaptLiveArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *a {
		t.Fatalf("round trip changed the artifact:\n%+v\n%+v", got, a)
	}

	dir := t.TempDir()
	path, err := WriteAdaptLiveArtifactFile(dir, a)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "BENCH_adapt-live.json") {
		t.Fatalf("unexpected artifact path %q", path)
	}
	if _, err := ReadAdaptLiveArtifactFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptLiveArtifactValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*AdaptLiveArtifact)
	}{
		{"wrong schema", func(a *AdaptLiveArtifact) { a.Schema = 99 }},
		{"wrong name", func(a *AdaptLiveArtifact) { a.Name = "drift" }},
		{"no requests", func(a *AdaptLiveArtifact) { a.Requests = 0 }},
		{"no eval requests", func(a *AdaptLiveArtifact) { a.EvalRequests = 0 }},
		{"detection before shift", func(a *AdaptLiveArtifact) { a.DetectedAtSample = 100 }},
		{"latency mismatch", func(a *AdaptLiveArtifact) { a.DetectionLatencySamples = 7 }},
		{"window without version advance", func(a *AdaptLiveArtifact) { a.SwappedToVersion = 1 }},
	}
	for _, tc := range cases {
		a := goodAdaptLive()
		tc.mut(a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
	if err := goodAdaptLive().Validate(); err != nil {
		t.Fatalf("good artifact rejected: %v", err)
	}
}

func TestCheckAdaptLiveGate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*AdaptLiveArtifact)
		want string
	}{
		{"not detected", func(a *AdaptLiveArtifact) { a.Detected = false }, "never detected"},
		{"no window", func(a *AdaptLiveArtifact) { a.WindowsCompleted = 0 }, "no adaptation window"},
		{"dropped requests", func(a *AdaptLiveArtifact) { a.Rejected = 3 }, "dropped requests"},
		{"errored requests", func(a *AdaptLiveArtifact) { a.Errors = 1 }, "dropped requests"},
		{"no recovery", func(a *AdaptLiveArtifact) { a.PostSwapShiftedRouted = a.FrozenShiftedRouted }, "does not improve"},
	}
	for _, tc := range cases {
		a := goodAdaptLive()
		tc.mut(a)
		err := a.CheckAdaptLive()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: gate error %v, want %q", tc.name, err, tc.want)
		}
	}
	if err := goodAdaptLive().CheckAdaptLive(); err != nil {
		t.Fatalf("good artifact gated: %v", err)
	}
}

func TestAdaptLiveDecodeRejectsUnknownFields(t *testing.T) {
	var buf bytes.Buffer
	if err := goodAdaptLive().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	doc := strings.Replace(buf.String(), `"schema"`, `"bogusField": 1, "schema"`, 1)
	if _, err := DecodeAdaptLiveArtifact(strings.NewReader(doc)); err == nil {
		t.Fatal("unknown field accepted")
	}
}
