package experiments

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/federation"
	"repro/internal/metrics"
	"repro/internal/shiftex"
)

// RecoverFrac is the paper's recovery criterion: 95 % of pre-shift
// accuracy.
const RecoverFrac = 0.95

// Run executes one technique over one benchmark for one seed and returns
// the analyzed result.
func Run(b Benchmark, tf TechniqueFactory, opts Options, seed uint64) (metrics.RunResult, error) {
	if err := opts.Validate(); err != nil {
		return metrics.RunResult{}, err
	}
	spec := b.Spec.Scale(opts.Scale)
	sc, err := dataset.BuildScenario(spec, b.Shift, seed)
	if err != nil {
		return metrics.RunResult{}, fmt.Errorf("%s: %w", b.Name, err)
	}
	arch := b.Arch()
	arch[0] = spec.InputDim
	arch[len(arch)-1] = spec.NumClasses
	fed, err := federation.New(sc, arch, seed^0xfed)
	if err != nil {
		return metrics.RunResult{}, fmt.Errorf("%s: %w", b.Name, err)
	}
	if opts.RoundWorkers > 0 {
		fed.SetRoundWorkers(opts.RoundWorkers)
	}
	tech, err := tf.New(seed ^ 0x7ec)
	if err != nil {
		return metrics.RunResult{}, fmt.Errorf("%s/%s: %w", b.Name, tf.Name, err)
	}

	result := metrics.RunResult{Technique: tf.Name, Seed: seed}
	for w := 0; w < fed.NumWindows(); w++ {
		trace, err := tech.RunWindow(fed, w)
		if err != nil {
			return metrics.RunResult{}, fmt.Errorf("%s/%s window %d: %w", b.Name, tf.Name, w, err)
		}
		result.Traces = append(result.Traces, trace)
		result.Distributions = append(result.Distributions, tech.Assignments())
	}
	// Convert per-party assignments to per-expert counts.
	for i, assigns := range result.Distributions {
		result.Distributions[i] = shiftex.Snapshot(assigns)
	}
	if err := result.Analyze(RecoverFrac); err != nil {
		return metrics.RunResult{}, err
	}
	return result, nil
}

// RunSeeds runs one technique across all option seeds on the grid engine
// (opts.Workers concurrent cells; results identical to a serial loop).
func RunSeeds(b Benchmark, tf TechniqueFactory, opts Options) ([]metrics.RunResult, error) {
	g := Grid{Benchmarks: []Benchmark{b}, Techniques: []TechniqueFactory{tf}, Options: opts}
	cells, err := RunGrid(context.Background(), g, Pool{Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	out := make([]metrics.RunResult, 0, len(cells))
	for _, cr := range cells {
		out = append(out, cr.Result)
	}
	return out, nil
}

// Comparison holds every technique's multi-seed results on one benchmark.
type Comparison struct {
	Benchmark Benchmark
	Options   Options
	// Results maps technique name to its per-seed runs.
	Results map[string][]metrics.RunResult
	// Order preserves the technique ordering for stable output.
	Order []string
}

// Compare runs the given techniques (default: all five) on a benchmark.
// Cells execute on the grid engine with opts.Workers concurrency; the
// result is bit-identical to the serial path for any worker count.
func Compare(b Benchmark, opts Options, techniques ...TechniqueFactory) (*Comparison, error) {
	cmp, _, err := CompareGrid(context.Background(), b, opts, Pool{Workers: opts.Workers}, techniques...)
	if err != nil {
		return nil, err
	}
	return cmp, nil
}

// NumWindows returns the window count of the comparison's runs.
func (c *Comparison) NumWindows() int {
	for _, runs := range c.Results {
		if len(runs) > 0 {
			return len(runs[0].Traces)
		}
	}
	return 0
}
