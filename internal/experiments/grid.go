package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// The experiment grid treats every (benchmark, technique, seed) triple as an
// independent cell. A cell is a pure function of its inputs: Run derives
// every RNG in the cell from the cell's own seed (scenario, federation, and
// technique streams are split per cell, never shared), so scheduling cells
// on a worker pool produces bit-identical results to running them serially.
// The parity test in grid_test.go enforces that contract under -race.

// Cell identifies one independent unit of the experiment grid.
type Cell struct {
	Benchmark Benchmark
	Technique TechniqueFactory
	Seed      uint64
}

// Key formats the cell as "benchmark/technique/seed", the id used by
// progress output and the shiftex-bench -cell filter.
func (c Cell) Key() string {
	return fmt.Sprintf("%s/%s/%d", c.Benchmark.Name, c.Technique.Name, c.Seed)
}

// CellResult is one finished (or failed, or skipped) grid cell.
type CellResult struct {
	Cell Cell
	// Index is the cell's position in the serial grid order
	// (benchmark-major, then technique, then seed).
	Index  int
	Result metrics.RunResult
	Err    error
	// Elapsed is the cell's wall-clock training time. It is the only
	// non-deterministic field of a result; artifact consumers that need
	// byte-identical output strip it (see Artifact.StripTiming).
	Elapsed time.Duration
}

// ErrCellSkipped marks cells that were never scheduled because the context
// was cancelled first.
var ErrCellSkipped = errors.New("experiments: cell skipped (context cancelled)")

// Grid describes a set of cells: the cross product of benchmarks,
// techniques, and the option seeds, optionally pruned by Filter.
type Grid struct {
	Benchmarks []Benchmark
	// Techniques defaults to StandardTechniques(Options) when empty.
	Techniques []TechniqueFactory
	Options    Options
	// Filter, when non-nil, keeps only cells for which it returns true.
	Filter func(Cell) bool
}

// Cells expands the grid in serial order: benchmark-major, then technique,
// then seed. This order defines CellResult.Index and artifact cell order.
func (g Grid) Cells() []Cell {
	techniques := g.Techniques
	if len(techniques) == 0 {
		techniques = StandardTechniques(g.Options)
	}
	var cells []Cell
	for _, b := range g.Benchmarks {
		for _, tf := range techniques {
			for _, seed := range g.Options.Seeds {
				c := Cell{Benchmark: b, Technique: tf, Seed: seed}
				if g.Filter != nil && !g.Filter(c) {
					continue
				}
				cells = append(cells, c)
			}
		}
	}
	return cells
}

// Pool configures grid execution.
type Pool struct {
	// Workers bounds concurrent cells; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// OnCell, when non-nil, is invoked once per cell as it finishes, in
	// completion order. Calls are serialized; the callback never runs
	// concurrently with itself.
	OnCell func(CellResult)
}

func (p Pool) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunGrid executes every cell of the grid on a bounded worker pool and
// returns all results in serial grid order regardless of completion order.
//
// Failed cells do not stop the rest of the grid; their errors are joined
// into the returned error alongside any context error. Cells that were
// never scheduled because the context was cancelled carry ErrCellSkipped.
func RunGrid(ctx context.Context, g Grid, p Pool) ([]CellResult, error) {
	if err := g.Options.Validate(); err != nil {
		return nil, err
	}
	cells := g.Cells()
	if len(cells) == 0 {
		return nil, errors.New("experiments: empty grid (no cells after filtering)")
	}

	results := make([]CellResult, len(cells))
	for i, c := range cells {
		results[i] = CellResult{Cell: c, Index: i, Err: ErrCellSkipped}
	}

	workers := p.workers()
	if workers > len(cells) {
		workers = len(cells)
	}
	// Split cores between across-cell and within-cell parallelism: cells
	// already saturate the CPU when the pool is wide, so each cell's
	// federated rounds get cores/workers training goroutines (at least 1).
	// A single-cell run keeps the full per-round fan-out. Results are
	// bit-identical either way; only scheduling changes.
	if g.Options.RoundWorkers == 0 {
		rw := runtime.GOMAXPROCS(0) / workers
		if rw < 1 {
			rw = 1
		}
		g.Options.RoundWorkers = rw
	}
	jobs := make(chan int)
	var cbMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				cell := cells[i]
				start := time.Now()
				res, err := Run(cell.Benchmark, cell.Technique, g.Options, cell.Seed)
				cr := CellResult{
					Cell:    cell,
					Index:   i,
					Result:  res,
					Err:     err,
					Elapsed: time.Since(start),
				}
				results[i] = cr
				if p.OnCell != nil {
					cbMu.Lock()
					p.OnCell(cr)
					cbMu.Unlock()
				}
			}
		}()
	}

feed:
	for i := range cells {
		// Check cancellation before offering the job: select picks randomly
		// among ready cases, so an already-cancelled context must not race
		// an idle worker for the next cell.
		if ctx.Err() != nil {
			break
		}
		select {
		case <-ctx.Done():
			break feed
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()

	var errs []error
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	for _, r := range results {
		if r.Err != nil && !errors.Is(r.Err, ErrCellSkipped) {
			errs = append(errs, fmt.Errorf("%s: %w", r.Cell.Key(), r.Err))
		}
	}
	return results, errors.Join(errs...)
}

// CompareGrid runs the full technique grid for one benchmark on a worker
// pool and returns both the assembled comparison and the raw cell results
// (which carry per-cell timing for artifacts).
func CompareGrid(ctx context.Context, b Benchmark, opts Options, p Pool, techniques ...TechniqueFactory) (*Comparison, []CellResult, error) {
	if len(techniques) == 0 {
		techniques = StandardTechniques(opts)
	}
	g := Grid{Benchmarks: []Benchmark{b}, Techniques: techniques, Options: opts}
	cells, err := RunGrid(ctx, g, p)
	if err != nil {
		return nil, cells, err
	}
	cmp := &Comparison{
		Benchmark: b,
		Options:   opts,
		Results:   make(map[string][]metrics.RunResult, len(techniques)),
	}
	for _, tf := range techniques {
		cmp.Order = append(cmp.Order, tf.Name)
	}
	// Cells arrive in serial grid order (technique-major, seed-minor), so
	// appending preserves the per-technique seed order of the serial path.
	for _, cr := range cells {
		name := cr.Cell.Technique.Name
		cmp.Results[name] = append(cmp.Results[name], cr.Result)
	}
	return cmp, cells, nil
}

// SplitSeeds derives n independent run seeds from a base seed using the
// tensor RNG's split semantics. Each derived seed opens a statistically
// independent stream, so a grid over SplitSeeds cells never shares random
// state between cells — the property that keeps parallel and serial
// execution bit-identical.
func SplitSeeds(base uint64, n int) []uint64 {
	rng := tensor.NewRNG(base)
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Split().Uint64()
	}
	return out
}
