package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/shiftex"
)

// WriteTable prints a Table 1/2-style block for one benchmark: per
// technique and per window, Accuracy Drop, Recovery Time, and Max Accuracy
// (mean±std across seeds). Recovery ">R" matches the paper's notation for
// windows where the method never regained 95 % of pre-shift accuracy.
func WriteTable(w io.Writer, c *Comparison) error {
	windows := c.NumWindows()
	if windows < 2 {
		return fmt.Errorf("experiments: need >=2 windows, have %d", windows)
	}
	rounds := c.Options.RoundsPerWindow
	fmt.Fprintf(w, "%s  (%d parties, %d windows, %d seeds)\n",
		strings.ToUpper(c.Benchmark.Name), c.Benchmark.Spec.Scale(c.Options.Scale).NumParties,
		windows, len(c.Options.Seeds))
	fmt.Fprintf(w, "%-10s", "Tech.")
	for wi := 1; wi < windows; wi++ {
		fmt.Fprintf(w, " | %-31s", fmt.Sprintf("W%d  Drop / Time / Max", wi))
	}
	fmt.Fprintln(w)
	for _, name := range c.Order {
		runs := c.Results[name]
		fmt.Fprintf(w, "%-10s", name)
		for wi := 1; wi < windows; wi++ {
			agg, err := metrics.AggregateWindows(runs, wi)
			if err != nil {
				return err
			}
			rec := fmt.Sprintf(">%d", rounds)
			if agg.MedianRecovery != metrics.NotRecovered {
				rec = fmt.Sprintf("%d", agg.MedianRecovery)
			}
			fmt.Fprintf(w, " | %s / %s / %s", agg.Drop, rec, agg.Max)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteConvergence prints the Figure 3/4-style accuracy-vs-round series:
// one line per technique with the seed-averaged accuracy at every round
// across all windows, concatenated.
func WriteConvergence(w io.Writer, c *Comparison) error {
	fmt.Fprintf(w, "convergence %s (accuracy %% per round; windows concatenated)\n", c.Benchmark.Name)
	for _, name := range c.Order {
		runs := c.Results[name]
		var series []float64
		for wi := 0; wi < c.NumWindows(); wi++ {
			mt, err := metrics.MeanTrace(runs, wi)
			if err != nil {
				return err
			}
			series = append(series, mt...)
		}
		fmt.Fprintf(w, "%-10s", name)
		for _, v := range series {
			fmt.Fprintf(w, " %5.1f", 100*v)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteMaxAccuracy prints the Figure 5/6-style per-window peak accuracy
// (mean±std across seeds) for every technique.
func WriteMaxAccuracy(w io.Writer, c *Comparison) error {
	windows := c.NumWindows()
	fmt.Fprintf(w, "max accuracy per window %s\n", c.Benchmark.Name)
	fmt.Fprintf(w, "%-10s", "Tech.")
	for wi := 1; wi < windows; wi++ {
		fmt.Fprintf(w, " | %-12s", fmt.Sprintf("W%d", wi))
	}
	fmt.Fprintln(w)
	for _, name := range c.Order {
		runs := c.Results[name]
		fmt.Fprintf(w, "%-10s", name)
		for wi := 1; wi < windows; wi++ {
			agg, err := metrics.AggregateWindows(runs, wi)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " | %-12s", agg.Max)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteExpertDistribution prints the Figure 7/8-style party-per-expert
// counts per window for one technique (ShiftEx unless another is named),
// using the first seed's run.
func WriteExpertDistribution(w io.Writer, c *Comparison, technique string) error {
	if technique == "" {
		technique = "shiftex"
	}
	runs, ok := c.Results[technique]
	if !ok || len(runs) == 0 {
		return fmt.Errorf("experiments: no runs for technique %q", technique)
	}
	run := runs[0]
	fmt.Fprintf(w, "expert distribution %s / %s (parties per expert per window)\n", c.Benchmark.Name, technique)
	for wi, dist := range run.Distributions {
		fmt.Fprintf(w, "W%d:", wi)
		for _, id := range shiftex.SortedKeys(dist) {
			fmt.Fprintf(w, "  expert%d=%d", id, dist[id])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteCellResult prints one grid cell's headline line — the streaming
// progress format of shiftex-bench's grid mode: cell key, final accuracy,
// windows recovered, and wall-clock.
func WriteCellResult(w io.Writer, cr CellResult) error {
	if cr.Err != nil {
		_, err := fmt.Fprintf(w, "%-32s FAILED: %v\n", cr.Cell.Key(), cr.Err)
		return err
	}
	recovered, windows := 0, 0
	for wi := 1; wi < len(cr.Result.Windows); wi++ {
		windows++
		if cr.Result.Windows[wi].RecoveryRounds != metrics.NotRecovered {
			recovered++
		}
	}
	_, err := fmt.Fprintf(w, "%-32s final %5.1f%%  recovered %d/%d  %v\n",
		cr.Cell.Key(), 100*cr.Result.FinalAccuracy(), recovered, windows,
		cr.Elapsed.Round(time.Millisecond))
	return err
}

// WriteSummary prints the headline comparison the abstract quotes: final
// accuracy and mean recovery advantage of ShiftEx over the best baseline.
func WriteSummary(w io.Writer, c *Comparison) error {
	windows := c.NumWindows()
	if windows < 2 {
		return fmt.Errorf("experiments: need >=2 windows")
	}
	type rowT struct {
		name     string
		maxAcc   float64
		recovers int
	}
	var rows []rowT
	for _, name := range c.Order {
		runs := c.Results[name]
		var meanMax float64
		recovered := 0
		for wi := 1; wi < windows; wi++ {
			agg, err := metrics.AggregateWindows(runs, wi)
			if err != nil {
				return err
			}
			meanMax += agg.Max.Mean
			if agg.MedianRecovery != metrics.NotRecovered {
				recovered++
			}
		}
		rows = append(rows, rowT{name: name, maxAcc: meanMax / float64(windows-1), recovers: recovered})
	}
	fmt.Fprintf(w, "summary %s: mean max-accuracy over W1..W%d and #windows recovered\n", c.Benchmark.Name, windows-1)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %6.2f%%   recovered %d/%d windows\n", r.name, 100*r.maxAcc, r.recovers, windows-1)
	}
	return nil
}
