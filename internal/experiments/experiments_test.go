package experiments

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

func tinyOptions() Options {
	return Options{
		Scale:           0.1, // 20 parties on the 200-party presets
		Seeds:           []uint64{1},
		BootstrapRounds: 5,
		RoundsPerWindow: 5,
		Participants:    5,
		Epochs:          2,
	}
}

func TestBenchmarkPresets(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 5 {
		t.Fatalf("benchmarks = %d", len(bs))
	}
	names := map[string]bool{}
	for _, b := range bs {
		if err := b.Spec.Validate(); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		arch := b.Arch()
		if arch[0] != b.Spec.InputDim || arch[len(arch)-1] != b.Spec.NumClasses {
			t.Fatalf("%s arch = %v", b.Name, arch)
		}
		if len(arch) < 4 {
			t.Fatalf("%s arch too shallow: %v", b.Name, arch)
		}
		names[b.Name] = true
	}
	for _, want := range []string{"fmow", "cifar10c", "tinyimagenetc", "femnist", "fashionmnist"} {
		if !names[want] {
			t.Fatalf("missing benchmark %s", want)
		}
	}
	if _, err := BenchmarkByName("fmow"); err != nil {
		t.Fatal(err)
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := QuickOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := PaperOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []func(*Options){
		func(o *Options) { o.Scale = 0 },
		func(o *Options) { o.Seeds = nil },
		func(o *Options) { o.BootstrapRounds = 0 },
		func(o *Options) { o.Participants = 0 },
		func(o *Options) { o.Epochs = 0 },
	}
	for i, mutate := range tests {
		o := QuickOptions()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Fatalf("case %d should error", i)
		}
	}
}

func TestStandardTechniques(t *testing.T) {
	tfs := StandardTechniques(tinyOptions())
	if len(tfs) != 5 {
		t.Fatalf("techniques = %d", len(tfs))
	}
	for _, tf := range tfs {
		tech, err := tf.New(1)
		if err != nil {
			t.Fatalf("%s: %v", tf.Name, err)
		}
		if tech.Name() != tf.Name {
			t.Fatalf("factory %s built technique %s", tf.Name, tech.Name())
		}
	}
	if _, err := TechniqueByName(tinyOptions(), "shiftex"); err != nil {
		t.Fatal(err)
	}
	if _, err := TechniqueByName(tinyOptions(), "nope"); err == nil {
		t.Fatal("unknown technique should error")
	}
}

func TestRunProducesAnalyzedResult(t *testing.T) {
	opts := tinyOptions()
	tf, err := TechniqueByName(opts, "fedprox")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(FMoW(), tf, opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Technique != "fedprox" || res.Seed != 7 {
		t.Fatalf("metadata: %+v", res)
	}
	if len(res.Traces) != FMoW().Spec.Windows {
		t.Fatalf("traces = %d", len(res.Traces))
	}
	if len(res.Windows) != len(res.Traces) {
		t.Fatal("windows not analyzed")
	}
	if len(res.Distributions) != len(res.Traces) {
		t.Fatal("distributions missing")
	}
	// Single-model technique: every window's distribution is one model
	// holding all parties.
	for _, d := range res.Distributions {
		if len(d) != 1 {
			t.Fatalf("fedprox distribution = %v", d)
		}
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	opts := tinyOptions()
	tf, err := TechniqueByName(opts, "fedprox")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(FMoW(), tf, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(FMoW(), tf, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	for w := range a.Traces {
		for i := range a.Traces[w] {
			if a.Traces[w][i] != b.Traces[w][i] {
				t.Fatal("same seed must reproduce identical traces")
			}
		}
	}
}

func TestRunInvalidOptions(t *testing.T) {
	opts := tinyOptions()
	opts.Scale = 0
	tf := StandardTechniques(tinyOptions())[0]
	if _, err := Run(FMoW(), tf, opts, 1); err == nil {
		t.Fatal("invalid options should error")
	}
}

func TestCompareAndFormatters(t *testing.T) {
	opts := tinyOptions()
	// Compare just two techniques to keep the test fast.
	fp, err := TechniqueByName(opts, "fedprox")
	if err != nil {
		t.Fatal(err)
	}
	sx, err := TechniqueByName(opts, "shiftex")
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(FMoW(), opts, sx, fp)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.NumWindows() != FMoW().Spec.Windows {
		t.Fatalf("windows = %d", cmp.NumWindows())
	}
	if len(cmp.Order) != 2 || cmp.Order[0] != "shiftex" {
		t.Fatalf("order = %v", cmp.Order)
	}

	var sb strings.Builder
	if err := WriteTable(&sb, cmp); err != nil {
		t.Fatal(err)
	}
	table := sb.String()
	if !strings.Contains(table, "shiftex") || !strings.Contains(table, "fedprox") {
		t.Fatalf("table missing techniques:\n%s", table)
	}
	if !strings.Contains(table, "Drop / Time / Max") {
		t.Fatalf("table missing headers:\n%s", table)
	}

	sb.Reset()
	if err := WriteConvergence(&sb, cmp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "convergence fmow") {
		t.Fatal("convergence output malformed")
	}

	sb.Reset()
	if err := WriteMaxAccuracy(&sb, cmp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "max accuracy per window") {
		t.Fatal("max accuracy output malformed")
	}

	sb.Reset()
	if err := WriteExpertDistribution(&sb, cmp, "shiftex"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "W0:") || !strings.Contains(out, "expert0=") {
		t.Fatalf("expert distribution malformed:\n%s", out)
	}
	if err := WriteExpertDistribution(&sb, cmp, "nope"); err == nil {
		t.Fatal("unknown technique should error")
	}

	sb.Reset()
	if err := WriteSummary(&sb, cmp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "summary fmow") {
		t.Fatal("summary malformed")
	}
}

func TestWriteTableRejectsSingleWindow(t *testing.T) {
	cmp := &Comparison{
		Benchmark: FMoW(),
		Options:   tinyOptions(),
		Results:   map[string][]metrics.RunResult{"x": {{Traces: [][]float64{{0.5}}}}},
		Order:     []string{"x"},
	}
	var sb strings.Builder
	if err := WriteTable(&sb, cmp); err == nil {
		t.Fatal("single-window comparison should error")
	}
}
