package experiments

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func validServingArtifact() *ServingArtifact {
	return &ServingArtifact{
		Schema: ServingSchemaVersion,
		Name:   ServingArtifactName,
		Options: ServingOptions{
			CheckpointWindows: 4, Parties: 8, SamplesPerParty: 40,
			TestPerParty: 20, Seed: 42, Concurrency: 4, Repeat: 2,
			Workers: 2, MaxBatch: 32, MaxDelayMs: 2, CacheSize: 4096,
		},
		Requests:         320,
		DurationMs:       12.5,
		ThroughputPerSec: 25600,
		LatencyMsP50:     0.1, LatencyMsP90: 0.2, LatencyMsP99: 0.5, LatencyMsMax: 1.2,
		Accuracy: 0.7, RoutedToAssigned: 0.8, CacheHitRate: 0.5, MeanBatch: 3.2,
		Regimes: []ServingRegime{
			{Regime: "none", Requests: 160, Accuracy: 0.8, RoutedToAssigned: 0.9, MatchedFraction: 0.4},
			{Regime: "fog/3", Requests: 160, Accuracy: 0.6, RoutedToAssigned: 0.7, MatchedFraction: 0.9},
		},
	}
}

func TestServingArtifactRoundTrip(t *testing.T) {
	a := validServingArtifact()
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeServingArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Requests != a.Requests || len(got.Regimes) != 2 || got.Regimes[1].Regime != "fog/3" {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestServingArtifactFile(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteServingArtifactFile(dir, validServingArtifact())
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_serving.json" {
		t.Fatalf("wrote %s, want BENCH_serving.json", path)
	}
	if _, err := ReadServingArtifactFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestServingArtifactValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ServingArtifact)
		want   string
	}{
		{"wrong schema", func(a *ServingArtifact) { a.Schema = 99 }, "schema"},
		{"wrong name", func(a *ServingArtifact) { a.Name = "grid" }, "name"},
		{"cold name without flag", func(a *ServingArtifact) { a.Name = ServingColdArtifactName }, "coldTraffic"},
		{"cold flag without name", func(a *ServingArtifact) { a.Options.ColdTraffic = true }, "coldTraffic"},
		{"no requests", func(a *ServingArtifact) { a.Requests = 0 }, "requests"},
		{"no duration", func(a *ServingArtifact) { a.DurationMs = 0 }, "duration"},
		{"no regimes", func(a *ServingArtifact) { a.Regimes = nil }, "regime"},
		{"unnamed regime", func(a *ServingArtifact) { a.Regimes[0].Regime = "" }, "name"},
		{"empty regime", func(a *ServingArtifact) { a.Regimes[0].Requests = 0 }, "requests"},
	}
	for _, tc := range cases {
		a := validServingArtifact()
		tc.mutate(a)
		err := a.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err=%v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestServingColdArtifactFile(t *testing.T) {
	a := validServingArtifact()
	a.Name = ServingColdArtifactName
	a.Options.ColdTraffic = true
	a.Options.CacheSize = -1
	a.CacheHitRate = 0
	dir := t.TempDir()
	path, err := WriteServingArtifactFile(dir, a)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_serving-cold.json" {
		t.Fatalf("wrote %s, want BENCH_serving-cold.json", path)
	}
	got, err := ReadServingArtifactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Options.ColdTraffic || got.Name != ServingColdArtifactName {
		t.Fatalf("cold round trip lost the marker: %+v", got)
	}
}

func TestServingArtifactRejectsUnknownFields(t *testing.T) {
	var buf bytes.Buffer
	if err := validServingArtifact().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(buf.Bytes(), []byte(`"schema"`), []byte(`"bogusField": 1, "schema"`), 1)
	if _, err := DecodeServingArtifact(bytes.NewReader(tampered)); err == nil {
		t.Fatal("unknown field must be rejected")
	}
}
