package experiments

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

var updateGolden = flag.Bool("update", false, "rewrite golden artifact files")

// syntheticCells builds a small deterministic two-technique grid result
// without any training, for pure serialization tests.
func syntheticCells(t *testing.T) (Options, []CellResult) {
	t.Helper()
	opts := Options{
		Scale:           0.5,
		Seeds:           []uint64{1, 2},
		BootstrapRounds: 4,
		RoundsPerWindow: 4,
		Participants:    4,
		Epochs:          1,
	}
	b := FMoW()
	tfs := StandardTechniques(opts)[:2] // shiftex, fedprox
	traces := map[string][][]float64{
		"shiftex": {{0.30, 0.45, 0.52, 0.55}, {0.40, 0.48, 0.54, 0.58}, {0.44, 0.53, 0.57, 0.60}},
		"fedprox": {{0.30, 0.42, 0.48, 0.50}, {0.33, 0.40, 0.45, 0.47}, {0.35, 0.41, 0.44, 0.46}},
	}
	dists := map[string][]map[int]int{
		"shiftex": {{0: 25}, {0: 15, 1: 10}, {0: 12, 1: 10, 2: 3}},
		"fedprox": {{0: 25}, {0: 25}, {0: 25}},
	}
	var cells []CellResult
	i := 0
	for _, tf := range tfs {
		for _, seed := range opts.Seeds {
			r := metrics.RunResult{
				Technique:     tf.Name,
				Seed:          seed,
				Traces:        traces[tf.Name],
				Distributions: dists[tf.Name],
			}
			if err := r.Analyze(RecoverFrac); err != nil {
				t.Fatal(err)
			}
			cells = append(cells, CellResult{
				Cell:    Cell{Benchmark: b, Technique: tf, Seed: seed},
				Index:   i,
				Result:  r,
				Elapsed: time.Duration(i+1) * 137 * time.Millisecond,
			})
			i++
		}
	}
	return opts, cells
}

func TestArtifactRoundTrip(t *testing.T) {
	opts, cells := syntheticCells(t)
	a := NewArtifact("fmow", opts, cells)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, decoded) {
		t.Fatal("artifact round trip not identical")
	}

	// The reconstructed RunResults must equal the originals field for field.
	for i, c := range decoded.Cells {
		if got, want := c.RunResult(), cells[i].Result; !reflect.DeepEqual(got, want) {
			t.Fatalf("cell %d RunResult round trip:\ngot  %+v\nwant %+v", i, got, want)
		}
	}

	// Re-encoding the decoded artifact must reproduce the bytes exactly.
	var buf2 bytes.Buffer
	if err := decoded.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-encoded artifact bytes differ")
	}
}

func TestArtifactGolden(t *testing.T) {
	opts, cells := syntheticCells(t)
	a := NewArtifact("fmow", opts, cells)
	a.StripTiming() // golden bytes must be timing-free

	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", ArtifactFileName("golden"))
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/experiments -run TestArtifactGolden -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("artifact schema drifted from golden file %s; if intentional, bump ArtifactSchemaVersion and regenerate with -update", golden)
	}

	// The golden file itself must decode under the current schema.
	ga, err := DecodeArtifact(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if ga.Schema != ArtifactSchemaVersion {
		t.Fatalf("golden schema = %d, want %d", ga.Schema, ArtifactSchemaVersion)
	}
}

func TestArtifactStripTimingDeterminism(t *testing.T) {
	opts, cells := syntheticCells(t)
	a := NewArtifact("fmow", opts, cells)
	slower := append([]CellResult(nil), cells...)
	for i := range slower {
		slower[i].Elapsed = time.Duration(i+1) * 999 * time.Millisecond
	}
	b := NewArtifact("fmow", opts, slower)

	var rawA, rawB bytes.Buffer
	if err := a.Encode(&rawA); err != nil {
		t.Fatal(err)
	}
	if err := b.Encode(&rawB); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(rawA.Bytes(), rawB.Bytes()) {
		t.Fatal("timing fields should make untripped artifacts differ")
	}

	a.StripTiming()
	b.StripTiming()
	rawA.Reset()
	rawB.Reset()
	if err := a.Encode(&rawA); err != nil {
		t.Fatal(err)
	}
	if err := b.Encode(&rawB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawA.Bytes(), rawB.Bytes()) {
		t.Fatal("stripped artifacts must be byte-identical")
	}
}

func TestArtifactValidation(t *testing.T) {
	opts, cells := syntheticCells(t)
	good := NewArtifact("fmow", opts, cells)

	mutations := []func(*Artifact){
		func(a *Artifact) { a.Schema = ArtifactSchemaVersion + 1 },
		func(a *Artifact) { a.Name = "" },
		func(a *Artifact) { a.Cells = nil },
		func(a *Artifact) { a.Cells[0].Technique = "" },
		func(a *Artifact) { a.Cells[0].Traces = nil },
		func(a *Artifact) { a.Cells[0].Windows = a.Cells[0].Windows[:1] },
	}
	for i, mutate := range mutations {
		var buf bytes.Buffer
		if err := good.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		a, err := DecodeArtifact(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		mutate(a)
		if err := a.Validate(); err == nil {
			t.Fatalf("mutation %d should fail validation", i)
		}
	}

	// Unknown fields are schema drift and must be rejected.
	if _, err := DecodeArtifact(strings.NewReader(`{"schema":1,"name":"fmow","options":{},"cells":[],"extra":true}`)); err == nil {
		t.Fatal("unknown field should be rejected")
	}
}

func TestComparisonFromArtifact(t *testing.T) {
	opts, cells := syntheticCells(t)
	a := NewArtifact("fmow", opts, cells)
	cmp, err := ComparisonFromArtifact(a)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Benchmark.Name != "fmow" {
		t.Fatalf("benchmark = %s", cmp.Benchmark.Name)
	}
	if !reflect.DeepEqual(cmp.Order, []string{"shiftex", "fedprox"}) {
		t.Fatalf("order = %v", cmp.Order)
	}
	for _, name := range cmp.Order {
		if len(cmp.Results[name]) != len(opts.Seeds) {
			t.Fatalf("%s runs = %d", name, len(cmp.Results[name]))
		}
	}
	// Every formatter must work from a replayed comparison.
	var sb strings.Builder
	if err := WriteTable(&sb, cmp); err != nil {
		t.Fatal(err)
	}
	if err := WriteSummary(&sb, cmp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "shiftex") {
		t.Fatalf("replayed table malformed:\n%s", sb.String())
	}

	// A cell from a different benchmark is a corrupt artifact.
	a.Cells[0].Benchmark = "cifar10c"
	if _, err := ComparisonFromArtifact(a); err == nil {
		t.Fatal("mixed-benchmark artifact should error")
	}
}

func TestArtifactFileRoundTripAndGridParity(t *testing.T) {
	// End-to-end acceptance check: the same real grid run with 1 and with
	// 8 workers must serialize (timing-stripped) to identical bytes.
	opts := gridOptions()
	g := Grid{Benchmarks: []Benchmark{FMoW()}, Techniques: cheapTechniques(t, opts), Options: opts}

	encode := func(workers int) []byte {
		t.Helper()
		cells, err := RunGrid(context.Background(), g, Pool{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		arts := ArtifactsFromCells(opts, cells)
		if len(arts) != 1 {
			t.Fatalf("artifacts = %d", len(arts))
		}
		arts[0].StripTiming()
		var buf bytes.Buffer
		if err := arts[0].Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := encode(1)
	parallel := encode(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("BENCH artifact bytes differ between -workers 1 and -workers 8")
	}

	// File round trip through the canonical BENCH_<name>.json path.
	dir := t.TempDir()
	cells, err := RunGrid(context.Background(), g, Pool{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	a := ArtifactsFromCells(opts, cells)[0]
	path, err := WriteArtifactFile(dir, a)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_fmow.json" {
		t.Fatalf("artifact path = %s", path)
	}
	back, err := ReadArtifactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Fatal("file round trip not identical")
	}
}
