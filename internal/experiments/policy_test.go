package experiments

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

func TestPolicyTechniques(t *testing.T) {
	tfs, err := PolicyTechniques(tinyOptions(), []string{"default", "exact-assign"})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, tf := range tfs {
		names = append(names, tf.Name)
	}
	want := []string{"shiftex@default", "shiftex@exact-assign"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("sweep factories %v, want %v", names, want)
	}
	for _, tf := range tfs {
		if tf.Policy == "" {
			t.Fatalf("factory %s has no policy recorded", tf.Name)
		}
	}

	// Unknown policies fail up front with the live registry listing.
	_, err = PolicyTechniques(tinyOptions(), []string{"nope"})
	if err == nil {
		t.Fatal("unknown policy should error")
	}
	if !strings.Contains(err.Error(), "exact-assign") {
		t.Fatalf("error %q does not carry the registry listing", err)
	}
	if _, err := PolicyTechniques(tinyOptions(), nil); err == nil {
		t.Fatal("empty sweep should error")
	}
	// A trailing comma must not silently add a default-policy cell, and
	// duplicates must not produce colliding grid keys.
	if _, err := PolicyTechniques(tinyOptions(), []string{"exact-assign", ""}); err == nil {
		t.Fatal("empty policy name should error")
	}
	if _, err := PolicyTechniques(tinyOptions(), []string{"default", "default"}); err == nil {
		t.Fatal("duplicate policy name should error")
	}
}

func TestTechniqueByNameWithPolicy(t *testing.T) {
	tf, err := TechniqueByName(tinyOptions(), "shiftex@cov-detect")
	if err != nil {
		t.Fatal(err)
	}
	if tf.Name != "shiftex@cov-detect" || tf.Policy != "cov-detect" {
		t.Fatalf("parsed factory %+v", tf)
	}
	if _, err := TechniqueByName(tinyOptions(), "shiftex@nope"); err == nil {
		t.Fatal("unknown policy should error")
	}
	if _, err := TechniqueByName(tinyOptions(), "fedprox@exact-assign"); err == nil {
		t.Fatal("policy on a policy-free technique should error")
	}
	if _, err := TechniqueByName(tinyOptions(), "nope"); err == nil {
		t.Fatal("unknown technique should error")
	}
	if _, err := TechniqueByName(tinyOptions(), "shiftex@"); err == nil {
		t.Fatal("trailing @ should error, not silently match nothing")
	}
	// The default policy is a no-op on a policy-free technique — same
	// tolerance as adapt.NewTechnique, normalized to the plain factory so
	// the display name matches real cell keys.
	tf, err = TechniqueByName(tinyOptions(), "fedprox@default")
	if err != nil {
		t.Fatal(err)
	}
	if tf.Name != "fedprox" || tf.Policy != "" {
		t.Fatalf("fedprox@default normalized to %+v, want plain fedprox", tf)
	}
}

// TestPolicySweepGridCellParity is the grid-cell half of the exact-solver
// parity check: on a small scenario the same cell runs under the default
// and exact-assign policies, both complete and analyze, and the
// registry-constructed "shiftex@default" cell is bit-identical to the
// plain "shiftex" cell (the default policy IS the default technique).
func TestPolicySweepGridCellParity(t *testing.T) {
	if testing.Short() {
		t.Skip("policy sweep training is slow")
	}
	opts := tinyOptions()
	b := FMoW()

	plain, err := Run(b, StandardTechniques(opts)[0], opts, 1)
	if err != nil {
		t.Fatal(err)
	}

	tfs, err := PolicyTechniques(opts, []string{"default", "exact-assign"})
	if err != nil {
		t.Fatal(err)
	}
	g := Grid{Benchmarks: []Benchmark{b}, Techniques: tfs, Options: opts}
	cells, err := RunGrid(context.Background(), g, Pool{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}

	byName := map[string]CellResult{}
	for _, cr := range cells {
		if cr.Err != nil {
			t.Fatalf("%s: %v", cr.Cell.Key(), cr.Err)
		}
		if len(cr.Result.Traces) == 0 {
			t.Fatalf("%s produced no traces", cr.Cell.Key())
		}
		byName[cr.Cell.Technique.Name] = cr
	}

	def := byName["shiftex@default"].Result
	if !reflect.DeepEqual(def.Traces, plain.Traces) || !reflect.DeepEqual(def.Distributions, plain.Distributions) {
		t.Fatal("shiftex@default diverges from plain shiftex on the same cell")
	}

	exact := byName["shiftex@exact-assign"].Result
	if len(exact.Traces) != len(def.Traces) {
		t.Fatalf("exact-assign ran %d windows, default %d", len(exact.Traces), len(def.Traces))
	}
}

// TestPolicyArtifactRoundTrip: swept cells carry their policy through the
// artifact layer, artifact names are free-form grid labels, and replay
// resolves the benchmark from the cells.
func TestPolicyArtifactRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("policy sweep training is slow")
	}
	opts := tinyOptions()
	b := FMoW()
	tfs, err := PolicyTechniques(opts, []string{"default", "cov-detect"})
	if err != nil {
		t.Fatal(err)
	}
	g := Grid{Benchmarks: []Benchmark{b}, Techniques: tfs, Options: opts}
	cells, err := RunGrid(context.Background(), g, Pool{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	arts := ArtifactsFromCells(opts, cells)
	if len(arts) != 1 {
		t.Fatalf("got %d artifacts, want 1", len(arts))
	}
	a := arts[0]
	a.Name += "-policies" // the -policy sweep suffix shiftex-bench applies
	a.StripTiming()
	for _, c := range a.Cells {
		if c.Policy == "" {
			t.Fatalf("cell %s/%s has no policy recorded", c.Benchmark, c.Technique)
		}
		if !strings.HasSuffix(c.Technique, "@"+c.Policy) {
			t.Fatalf("cell technique %q does not carry policy %q", c.Technique, c.Policy)
		}
	}

	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Fatal("artifact did not round-trip")
	}

	cmp, err := ComparisonFromArtifact(back)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Benchmark.Name != b.Name {
		t.Fatalf("replay resolved benchmark %q, want %q", cmp.Benchmark.Name, b.Name)
	}
	if len(cmp.Order) != 2 {
		t.Fatalf("replay found %d techniques, want 2 (%v)", len(cmp.Order), cmp.Order)
	}
}
