package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/metrics"
)

// ArtifactSchemaVersion is bumped whenever the BENCH_*.json layout changes
// incompatibly; decoders reject artifacts from other schema versions.
const ArtifactSchemaVersion = 1

// Artifact is the versioned, machine-readable record of one benchmark's
// grid run: every cell's full trace, derived recovery stats, expert
// distributions, and wall-clock cost. It is what `shiftex-bench -json`
// writes as BENCH_<benchmark>.json, and what future PRs diff to back up
// performance claims.
//
// Every field except the per-cell wallClockMs is a deterministic function
// of (benchmark, technique, seed, options); StripTiming removes the rest,
// after which encoded bytes are identical for any worker count.
type Artifact struct {
	Schema  int             `json:"schema"`
	Name    string          `json:"name"`
	Options ArtifactOptions `json:"options"`
	Cells   []CellArtifact  `json:"cells"`
}

// ArtifactOptions records the protocol knobs that determine results.
// Execution-only settings (worker count) are deliberately excluded: they
// must not change the artifact.
type ArtifactOptions struct {
	Scale           float64  `json:"scale"`
	Seeds           []uint64 `json:"seeds"`
	BootstrapRounds int      `json:"bootstrapRounds"`
	RoundsPerWindow int      `json:"roundsPerWindow"`
	Participants    int      `json:"participants"`
	Epochs          int      `json:"epochs"`
}

// Options converts back to runnable experiment options (Workers unset).
func (o ArtifactOptions) Options() Options {
	return Options{
		Scale:           o.Scale,
		Seeds:           o.Seeds,
		BootstrapRounds: o.BootstrapRounds,
		RoundsPerWindow: o.RoundsPerWindow,
		Participants:    o.Participants,
		Epochs:          o.Epochs,
	}
}

// WindowArtifact is one window's derived recovery stats (§6 metrics).
type WindowArtifact struct {
	Drop           float64 `json:"drop"`
	RecoveryRounds int     `json:"recoveryRounds"`
	Max            float64 `json:"max"`
}

// CellArtifact is one grid cell's serialized RunResult.
type CellArtifact struct {
	Benchmark string `json:"benchmark"`
	// Technique is the cell's display name: the registered technique,
	// suffixed "@<policy>" when the cell ran a policy-swept variant.
	Technique string `json:"technique"`
	// Policy is the adaptation policy the cell ran under; empty for the
	// technique's default (keeps default-run artifacts byte-identical to
	// the pre-policy layout).
	Policy string `json:"policy,omitempty"`
	Seed   uint64 `json:"seed"`
	// Traces[w] is window w's per-round mean accuracy.
	Traces [][]float64 `json:"traces"`
	// Windows[w] holds derived metrics for w >= 1 (index 0 is burn-in).
	Windows []WindowArtifact `json:"windows"`
	// Distributions[w] maps expert ID to assigned-party count.
	Distributions []map[int]int `json:"distributions"`
	// WallClockMS is the cell's training wall-clock in milliseconds — the
	// only non-deterministic field; zero when stripped or unrecorded.
	WallClockMS float64 `json:"wallClockMs,omitempty"`
}

// RunResult reconstructs the metrics value the cell was serialized from.
func (c CellArtifact) RunResult() metrics.RunResult {
	r := metrics.RunResult{
		Technique:     c.Technique,
		Seed:          c.Seed,
		Traces:        c.Traces,
		Distributions: c.Distributions,
	}
	if c.Windows != nil {
		r.Windows = make([]metrics.WindowMetrics, len(c.Windows))
		for i, w := range c.Windows {
			r.Windows[i] = metrics.WindowMetrics{Drop: w.Drop, RecoveryRounds: w.RecoveryRounds, Max: w.Max}
		}
	}
	return r
}

func cellArtifact(cr CellResult) CellArtifact {
	r := cr.Result
	c := CellArtifact{
		Benchmark:     cr.Cell.Benchmark.Name,
		Technique:     r.Technique,
		Policy:        cr.Cell.Technique.Policy,
		Seed:          r.Seed,
		Traces:        r.Traces,
		Distributions: r.Distributions,
		WallClockMS:   float64(cr.Elapsed.Microseconds()) / 1e3,
	}
	if r.Windows != nil {
		c.Windows = make([]WindowArtifact, len(r.Windows))
		for i, w := range r.Windows {
			c.Windows[i] = WindowArtifact{Drop: w.Drop, RecoveryRounds: w.RecoveryRounds, Max: w.Max}
		}
	}
	return c
}

// NewArtifact builds one benchmark's artifact from its finished grid cells
// (cells that failed or were skipped are omitted).
func NewArtifact(name string, opts Options, cells []CellResult) *Artifact {
	a := &Artifact{
		Schema: ArtifactSchemaVersion,
		Name:   name,
		Options: ArtifactOptions{
			Scale:           opts.Scale,
			Seeds:           opts.Seeds,
			BootstrapRounds: opts.BootstrapRounds,
			RoundsPerWindow: opts.RoundsPerWindow,
			Participants:    opts.Participants,
			Epochs:          opts.Epochs,
		},
	}
	for _, cr := range cells {
		if cr.Err != nil {
			continue
		}
		a.Cells = append(a.Cells, cellArtifact(cr))
	}
	return a
}

// ArtifactsFromCells groups finished grid cells by benchmark, preserving
// first-appearance (grid) order — one artifact per benchmark.
func ArtifactsFromCells(opts Options, cells []CellResult) []*Artifact {
	byName := map[string]*Artifact{}
	var order []string
	for _, cr := range cells {
		if cr.Err != nil {
			continue
		}
		name := cr.Cell.Benchmark.Name
		a, ok := byName[name]
		if !ok {
			a = NewArtifact(name, opts, nil)
			byName[name] = a
			order = append(order, name)
		}
		a.Cells = append(a.Cells, cellArtifact(cr))
	}
	out := make([]*Artifact, len(order))
	for i, name := range order {
		out[i] = byName[name]
	}
	return out
}

// StripTiming zeroes every wall-clock field so that encoded bytes are a
// pure function of the experiment protocol (used by -deterministic and by
// the parallel/serial parity tests).
func (a *Artifact) StripTiming() {
	for i := range a.Cells {
		a.Cells[i].WallClockMS = 0
	}
}

// Validate checks schema version and structural coherence.
func (a *Artifact) Validate() error {
	switch {
	case a.Schema != ArtifactSchemaVersion:
		return fmt.Errorf("experiments: artifact schema %d, want %d", a.Schema, ArtifactSchemaVersion)
	case a.Name == "":
		return errors.New("experiments: artifact has no benchmark name")
	case len(a.Cells) == 0:
		return errors.New("experiments: artifact has no cells")
	}
	for i, c := range a.Cells {
		switch {
		case c.Technique == "":
			return fmt.Errorf("experiments: cell %d has no technique", i)
		case len(c.Traces) == 0:
			return fmt.Errorf("experiments: cell %d (%s/%s/%d) has no traces", i, c.Benchmark, c.Technique, c.Seed)
		case c.Windows != nil && len(c.Windows) != len(c.Traces):
			return fmt.Errorf("experiments: cell %d has %d windows for %d traces", i, len(c.Windows), len(c.Traces))
		}
	}
	return nil
}

// Encode writes the artifact as indented, newline-terminated JSON. Field
// order is fixed by the struct layout and Go's json encoder sorts map
// keys, so equal artifacts always encode to equal bytes.
func (a *Artifact) Encode(w io.Writer) error {
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: encode artifact: %w", err)
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// DecodeArtifact reads and validates one artifact. Unknown fields are
// rejected so schema drift fails loudly instead of silently dropping data.
func DecodeArtifact(r io.Reader) (*Artifact, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var a Artifact
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("experiments: decode artifact: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// ArtifactFileName is the canonical on-disk name, BENCH_<benchmark>.json.
func ArtifactFileName(name string) string {
	return "BENCH_" + name + ".json"
}

// WriteArtifactFile encodes the artifact into dir under its canonical name
// and returns the written path.
func WriteArtifactFile(dir string, a *Artifact) (string, error) {
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		return "", err
	}
	path := filepath.Join(dir, ArtifactFileName(a.Name))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return "", fmt.Errorf("experiments: write artifact: %w", err)
	}
	return path, nil
}

// ReadArtifactFile decodes one artifact from disk.
func ReadArtifactFile(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: read artifact: %w", err)
	}
	defer f.Close()
	return DecodeArtifact(f)
}

// ComparisonFromArtifact rebuilds a Comparison from a decoded artifact so
// every formatter (tables, convergence, summaries) can replay a recorded
// run without re-training. The benchmark is resolved from the cells (not
// the artifact name, which is a free-form grid label — e.g.
// "fmow-policies" for a policy sweep); artifacts spanning several
// benchmarks (the headline artifact) cannot be replayed as one comparison.
func ComparisonFromArtifact(a *Artifact) (*Comparison, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	b, err := BenchmarkByName(a.Cells[0].Benchmark)
	if err != nil {
		return nil, err
	}
	cmp := &Comparison{
		Benchmark: b,
		Options:   a.Options.Options(),
		Results:   make(map[string][]metrics.RunResult),
	}
	for _, c := range a.Cells {
		if c.Benchmark != b.Name {
			return nil, fmt.Errorf("experiments: artifact %q spans benchmarks %q and %q; replay handles one benchmark per artifact", a.Name, b.Name, c.Benchmark)
		}
		if _, ok := cmp.Results[c.Technique]; !ok {
			cmp.Order = append(cmp.Order, c.Technique)
		}
		cmp.Results[c.Technique] = append(cmp.Results[c.Technique], c.RunResult())
	}
	return cmp, nil
}
