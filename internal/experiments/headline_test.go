package experiments

import (
	"testing"

	"repro/internal/metrics"
)

// TestHeadlineShiftExBeatsFedProx guards the paper's central claim at test
// scale: under recurring covariate regimes with partial population shift,
// ShiftEx's specialized experts reach higher post-shift accuracy than a
// single proximal global model.
func TestHeadlineShiftExBeatsFedProx(t *testing.T) {
	if testing.Short() {
		t.Skip("headline comparison is seconds-scale; skipped in -short")
	}
	opts := Options{
		Scale:           0.3,
		Seeds:           []uint64{1, 2},
		BootstrapRounds: 10,
		RoundsPerWindow: 10,
		Participants:    8,
		Epochs:          2,
	}
	sx, err := TechniqueByName(opts, "shiftex")
	if err != nil {
		t.Fatal(err)
	}
	fp, err := TechniqueByName(opts, "fedprox")
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(FMoW(), opts, sx, fp)
	if err != nil {
		t.Fatal(err)
	}

	meanMax := func(name string) float64 {
		runs := cmp.Results[name]
		var total float64
		n := 0
		for w := 1; w < cmp.NumWindows(); w++ {
			agg, err := metrics.AggregateWindows(runs, w)
			if err != nil {
				t.Fatal(err)
			}
			total += agg.Max.Mean
			n++
		}
		return total / float64(n)
	}
	sxAcc, fpAcc := meanMax("shiftex"), meanMax("fedprox")
	// Allow a small tolerance: the claim is "at least as good, typically
	// several points better"; a regression below FedProx is a bug.
	if sxAcc < fpAcc-0.01 {
		t.Fatalf("headline violated: shiftex %.4f < fedprox %.4f", sxAcc, fpAcc)
	}
	t.Logf("shiftex %.4f vs fedprox %.4f (margin %+.1f pp)", sxAcc, fpAcc, 100*(sxAcc-fpAcc))

	// ShiftEx must actually have specialized: more than one expert by the
	// final window in at least one seed.
	specialized := false
	for _, run := range cmp.Results["shiftex"] {
		last := run.Distributions[len(run.Distributions)-1]
		if len(last) > 1 {
			specialized = true
		}
	}
	if !specialized {
		t.Fatal("shiftex never created a second expert despite recurring shifts")
	}
}
