package gateway

import (
	"container/list"
	"sync"

	"repro/internal/httpapi"
)

// sessionCache is the gateway-level answer cache: (model, input-hash) →
// the full PredictResponse a replica produced. It sits in front of the
// whole replica fleet, so a repeated input costs zero network hops — the
// fleet-wide analogue of the replica-local route cache.
//
// Entries carry the snapshot version they were answered under and are
// rejected once the model's fleet is known to serve a NEWER snapshot
// (lazy invalidation: the health prober and every proxied answer advance
// the model's known version, and get compares against it). A gateway can
// therefore never keep answering from a retired snapshot after a hot swap,
// without any explicit flush protocol.
//
// Collisions: keys are 64-bit input hashes without the full input retained
// (the gateway does not want to hold every tensor it proxied). A collision
// returns the colliding entry's answer — acceptable for a cache keyed on
// 64-bit FNV over float bits, where accidental collisions are ~2^-32 even
// at million-entry scale, and the same tradeoff a CDN makes.
type sessionCache struct {
	mu  sync.Mutex
	cap int
	m   map[sessionKey]*list.Element
	l   *list.List // front = most recently used
}

type sessionKey struct {
	model string
	key   uint64
}

type sessionEntry struct {
	k       sessionKey
	resp    httpapi.PredictResponse
	version int
}

// newSessionCache builds a cache holding up to capacity answers;
// capacity <= 0 disables caching.
func newSessionCache(capacity int) *sessionCache {
	return &sessionCache{cap: capacity, m: make(map[sessionKey]*list.Element), l: list.New()}
}

// get returns the cached answer for (model, key) if it was produced under
// the model's current snapshot version. Stale entries are evicted on
// sight.
func (c *sessionCache) get(model string, key uint64, currentVersion int) (httpapi.PredictResponse, bool) {
	if c.cap <= 0 {
		return httpapi.PredictResponse{}, false
	}
	sk := sessionKey{model, key}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[sk]
	if !ok {
		return httpapi.PredictResponse{}, false
	}
	e := el.Value.(*sessionEntry)
	if e.version < currentVersion {
		c.l.Remove(el)
		delete(c.m, sk)
		return httpapi.PredictResponse{}, false
	}
	c.l.MoveToFront(el)
	return e.resp, true
}

// put records a replica answer under the snapshot version it reported.
func (c *sessionCache) put(model string, key uint64, version int, resp httpapi.PredictResponse) {
	if c.cap <= 0 {
		return
	}
	sk := sessionKey{model, key}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[sk]; ok {
		e := el.Value.(*sessionEntry)
		e.resp, e.version = resp, version
		c.l.MoveToFront(el)
		return
	}
	for c.l.Len() >= c.cap {
		oldest := c.l.Back()
		c.l.Remove(oldest)
		delete(c.m, oldest.Value.(*sessionEntry).k)
	}
	c.m[sk] = c.l.PushFront(&sessionEntry{k: sk, resp: resp, version: version})
}

// len returns the number of cached answers.
func (c *sessionCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.l.Len()
}
