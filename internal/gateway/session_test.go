package gateway

import (
	"fmt"
	"testing"

	"repro/internal/httpapi"
)

func TestSessionCacheHitAndVersionInvalidation(t *testing.T) {
	c := newSessionCache(8)
	resp := httpapi.PredictResponse{Class: 3, Expert: 1, Snapshot: 1, Model: "m"}
	c.put("m", 42, 1, resp)

	got, ok := c.get("m", 42, 1)
	if !ok || got.Class != 3 {
		t.Fatalf("expected hit, got ok=%v %+v", ok, got)
	}
	// A different model namespace misses.
	if _, ok := c.get("other", 42, 1); ok {
		t.Fatal("cross-model hit: session keys must be (model, key)")
	}
	// The fleet moved to snapshot 2: the entry is stale and must die.
	if _, ok := c.get("m", 42, 2); ok {
		t.Fatal("stale snapshot entry served after version advance")
	}
	if c.len() != 0 {
		t.Fatalf("stale entry not evicted on sight: len=%d", c.len())
	}
	// Re-cached under the new version, it serves again.
	c.put("m", 42, 2, resp)
	if _, ok := c.get("m", 42, 2); !ok {
		t.Fatal("fresh entry missing after re-put")
	}
}

func TestSessionCacheLRUEviction(t *testing.T) {
	c := newSessionCache(4)
	for i := 0; i < 4; i++ {
		c.put("m", uint64(i), 1, httpapi.PredictResponse{Class: i})
	}
	// Touch key 0 so it is most recently used, then overflow.
	if _, ok := c.get("m", 0, 1); !ok {
		t.Fatal("warm entry missing")
	}
	c.put("m", 99, 1, httpapi.PredictResponse{Class: 99})
	if _, ok := c.get("m", 0, 1); !ok {
		t.Error("most-recently-used entry was evicted")
	}
	if _, ok := c.get("m", 1, 1); ok {
		t.Error("least-recently-used entry survived overflow")
	}
	if c.len() != 4 {
		t.Errorf("len=%d, want 4", c.len())
	}
}

func TestSessionCacheDisabled(t *testing.T) {
	c := newSessionCache(-1)
	c.put("m", 1, 1, httpapi.PredictResponse{})
	if _, ok := c.get("m", 1, 1); ok {
		t.Fatal("disabled cache returned a hit")
	}
}

func TestSessionCacheManyModels(t *testing.T) {
	c := newSessionCache(64)
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("model-%d", i)
		c.put(name, 7, i+1, httpapi.PredictResponse{Class: i, Model: name})
	}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("model-%d", i)
		got, ok := c.get(name, 7, i+1)
		if !ok || got.Model != name || got.Class != i {
			t.Fatalf("model %s entry wrong: ok=%v %+v", name, ok, got)
		}
	}
}
