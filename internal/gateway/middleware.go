package gateway

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/httpapi"
)

// Middleware wraps an http.Handler. Chains run outermost-first in the
// order the config lists them: ["logging","auth"] logs every request,
// including the ones auth then rejects.
type Middleware func(http.Handler) http.Handler

// availableMiddlewares is the registry the config selects from, by name.
// Adding a middleware means adding one entry here; the constructor
// receives the gateway so middlewares share its config and counters.
// Unknown names fail startup with this table's listing (the same
// convention the adaptation-policy registry uses).
var availableMiddlewares = map[string]func(g *Gateway) Middleware{
	"auth":      authMiddleware,
	"ratelimit": rateLimitMiddleware,
	"admission": admissionMiddleware,
	"logging":   loggingMiddleware,
}

// AvailableMiddlewares returns the registered middleware names, sorted —
// the vocabulary config may select from.
func AvailableMiddlewares() []string {
	names := make([]string, 0, len(availableMiddlewares))
	for n := range availableMiddlewares {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// buildChain resolves names against the registry and composes them into
// one Middleware. An unknown name is a startup error naming the live set.
func buildChain(g *Gateway, names []string) (Middleware, error) {
	mws := make([]Middleware, 0, len(names))
	for _, name := range names {
		ctor, ok := availableMiddlewares[name]
		if !ok {
			return nil, fmt.Errorf("gateway: unknown middleware %q (available: %s)",
				name, strings.Join(AvailableMiddlewares(), ", "))
		}
		mws = append(mws, ctor(g))
	}
	return func(next http.Handler) http.Handler {
		h := next
		for i := len(mws) - 1; i >= 0; i-- {
			h = mws[i](h)
		}
		return h
	}, nil
}

// authMiddleware enforces a bearer token from Config.AuthTokens. No
// configured tokens means nothing is accepted: enabling "auth" without
// credentials must fail closed.
func authMiddleware(g *Gateway) Middleware {
	allowed := make(map[string]bool, len(g.cfg.AuthTokens))
	for _, t := range g.cfg.AuthTokens {
		allowed[t] = true
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			tok, ok := bearerToken(r)
			if !ok || !allowed[tok] {
				g.metrics.rejected.Add(1)
				w.Header().Set("WWW-Authenticate", `Bearer realm="shiftex"`)
				httpapi.WriteError(w, http.StatusUnauthorized, "missing or invalid bearer token")
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

func bearerToken(r *http.Request) (string, bool) {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(h, prefix) {
		return "", false
	}
	return h[len(prefix):], true
}

// rateLimitMiddleware is a per-tenant token bucket. The tenant is the
// bearer token when present (one budget per credential), else the remote
// host — so one hot client cannot starve the rest of the fleet's budget.
func rateLimitMiddleware(g *Gateway) Middleware {
	lim := &rateLimiter{
		rate:    g.cfg.RatePerSecond,
		burst:   g.cfg.RateBurst,
		buckets: make(map[string]*tokenBucket),
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			tenant, ok := bearerToken(r)
			if !ok {
				tenant = remoteHost(r)
			}
			if !lim.allow(tenant, time.Now()) {
				g.metrics.rejected.Add(1)
				w.Header().Set("Retry-After", "1")
				httpapi.WriteError(w, http.StatusTooManyRequests,
					fmt.Sprintf("rate limit exceeded for tenant (%.0f req/s)", g.cfg.RatePerSecond))
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

func remoteHost(r *http.Request) string {
	addr := r.RemoteAddr
	if i := strings.LastIndexByte(addr, ':'); i >= 0 {
		return addr[:i]
	}
	return addr
}

type rateLimiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func (l *rateLimiter) allow(tenant string, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[tenant]
	if !ok {
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	b.last = now
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// admissionMiddleware sheds load past Config.MaxInflight concurrently
// admitted requests with 503 + Retry-After, protecting the replica fleet
// from a thundering herd the per-replica pipelines would otherwise absorb
// as queueing latency.
func admissionMiddleware(g *Gateway) Middleware {
	slots := make(chan struct{}, g.cfg.MaxInflight)
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case slots <- struct{}{}:
				defer func() { <-slots }()
				next.ServeHTTP(w, r)
			default:
				g.metrics.rejected.Add(1)
				w.Header().Set("Retry-After", "1")
				httpapi.WriteError(w, http.StatusServiceUnavailable,
					fmt.Sprintf("gateway at max inflight (%d)", g.cfg.MaxInflight))
			}
		})
	}
}

// loggingMiddleware counts and (when a logger is configured) logs each
// request with its final status.
func loggingMiddleware(g *Gateway) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
			start := time.Now()
			next.ServeHTTP(rec, r)
			g.metrics.logged.Add(1)
			g.logInfo(r.Context(), "request",
				"method", r.Method, "path", r.URL.Path, "status", rec.status,
				"durationUs", time.Since(start).Microseconds())
		})
	}
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}
