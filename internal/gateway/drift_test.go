package gateway

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/serve"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// startMonitoredReplica boots a serve replica with the drift monitor
// enabled and the route cache disabled (cache hits are invisible to the
// monitor), returning its address plus the in-process handles.
func startMonitoredReplica(t *testing.T, model string) (string, *serve.Server, *monitor.Monitor) {
	t.Helper()
	cp, err := service.LoadCheckpoint(tinyCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := serve.SnapshotFromCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(monitor.Config{
		QueueBlocks:  16,
		BlockRows:    16,
		EvalEvery:    32,
		BaselineSize: 64,
		WindowSize:   32,
		Threshold:    2,
		Calibrate:    stats.CalibrateConfig{Resamples: 20, PValue: 0.05},
		Seed:         3,
	})
	srv, err := serve.NewServer(snap, serve.Config{
		Workers:   1,
		MaxDelay:  200 * time.Microsecond,
		CacheSize: -1,
		Model:     model,
		Monitor:   mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); _ = srv.Close(); mon.Close() })
	return strings.TrimPrefix(ts.URL, "http://"), srv, mon
}

// TestGatewayFleetDriftAggregation pins the fleet view: the probe loop
// scrapes each replica's /v1/debug/drift summary, and /v1/state reports
// per-replica scores plus the fleet max/mean. A replica without a monitor
// contributes nothing (and does not zero the aggregates).
func TestGatewayFleetDriftAggregation(t *testing.T) {
	aMon, srv, mon := startMonitoredReplica(t, "default")
	aBare, _ := startReplica(t, "default")
	g := newTestGateway(t, Config{Models: map[string][]string{"default": {aMon, aBare}}})

	// Drive enough in-process traffic through the monitored replica to
	// fill its baseline and calibrate, then force an evaluation.
	dim := inputDim(t)
	rng := tensor.NewRNG(9)
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		if _, err := srv.Predict(ctx, rng.NormVec(dim, 0, 1)); err != nil {
			t.Fatalf("predict %d: %v", i, err)
		}
	}
	mon.Flush()
	if sum := mon.Summary(); !sum.Calibrated {
		t.Fatalf("monitor never calibrated: %s", sum.CalibrationError)
	}

	g.ProbeAll()
	st := g.State()
	if len(st.Models) != 1 {
		t.Fatalf("%d models in state, want 1", len(st.Models))
	}
	ms := st.Models[0]
	var seenMon, seenBare bool
	for _, rep := range ms.Replicas {
		switch rep.Addr {
		case aMon:
			seenMon = true
			if !rep.DriftSeen {
				t.Fatalf("monitored replica %s has no drift score after probe: %+v", aMon, rep)
			}
		case aBare:
			seenBare = true
			if rep.DriftSeen {
				t.Fatalf("bare replica %s reports a drift score: %+v", aBare, rep)
			}
		}
	}
	if !seenMon || !seenBare {
		t.Fatalf("replica listing incomplete: %+v", ms.Replicas)
	}
	// One scraped replica: mean equals its score equals the max.
	if ms.DriftMean != ms.DriftMax {
		t.Fatalf("fleet drift mean %g != max %g with a single scraped replica", ms.DriftMean, ms.DriftMax)
	}
}

// TestGatewayVersionSkewReporting pins the skew flag: healthy replicas
// serving different observed snapshot versions flip VersionSkew on, and a
// fleet-wide swap clears it.
func TestGatewayVersionSkewReporting(t *testing.T) {
	a1, srv1 := startReplica(t, "default")
	a2, srv2 := startReplica(t, "default")
	g := newTestGateway(t, Config{Models: map[string][]string{"default": {a1, a2}}})

	g.ProbeAll()
	if st := g.State().Models[0]; st.VersionSkew {
		t.Fatalf("uniform fleet reports version skew: %+v", st.Replicas)
	}

	// Swap only one replica: versions 2 vs 1 is a skewed fleet.
	cp, err := service.LoadCheckpoint(tinyCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := serve.SnapshotFromCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.Swap(snap); err != nil {
		t.Fatal(err)
	}
	g.ProbeAll()
	st := g.State().Models[0]
	if !st.VersionSkew {
		t.Fatalf("split fleet (versions %d/%d) not reported as skewed",
			srv1.Snapshot().Version, srv2.Snapshot().Version)
	}

	// Bring the laggard up to the same version: skew clears.
	snap2, err := serve.SnapshotFromCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Swap(snap2); err != nil {
		t.Fatal(err)
	}
	g.ProbeAll()
	if st := g.State().Models[0]; st.VersionSkew {
		t.Fatalf("uniform post-swap fleet still reports skew: %+v", st.Replicas)
	}
}
