package gateway

import (
	"sync"
	"testing"

	"repro/internal/httpapi"
)

// stubAdaptReporter stands in for the continual controller behind a
// replica's /v1/debug/adapt endpoint.
type stubAdaptReporter struct {
	mu sync.Mutex
	st httpapi.ContinualState
}

func (s *stubAdaptReporter) ContinualState() *httpapi.ContinualState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st
	return &st
}

func (s *stubAdaptReporter) set(st httpapi.ContinualState) {
	s.mu.Lock()
	s.st = st
	s.mu.Unlock()
}

// TestGatewayFleetAdaptAggregation pins the fleet adaptation view: the probe
// loop scrapes each replica's /v1/debug/adapt state, and /v1/state reports
// per-replica phase plus fleet mid-window and completed-window aggregates. A
// replica without a controller contributes nothing.
func TestGatewayFleetAdaptAggregation(t *testing.T) {
	aCtl, srv := startReplica(t, "default")
	aBare, _ := startReplica(t, "default")
	rep := &stubAdaptReporter{}
	rep.set(httpapi.ContinualState{Phase: "adapting", WindowsCompleted: 3, Triggers: 4})
	srv.AttachAdaptation(rep)

	g := newTestGateway(t, Config{Models: map[string][]string{"default": {aCtl, aBare}}})
	g.ProbeAll()

	ms := g.State().Models[0]
	var seenCtl, seenBare bool
	for _, r := range ms.Replicas {
		switch r.Addr {
		case aCtl:
			seenCtl = true
			if !r.AdaptSeen || r.AdaptPhase != "adapting" || r.AdaptWindows != 3 {
				t.Fatalf("controller replica scrape wrong: %+v", r)
			}
		case aBare:
			seenBare = true
			if r.AdaptSeen || r.AdaptPhase != "" {
				t.Fatalf("bare replica reports adaptation state: %+v", r)
			}
		}
	}
	if !seenCtl || !seenBare {
		t.Fatalf("replica listing incomplete: %+v", ms.Replicas)
	}
	if ms.AdaptingReplicas != 1 || ms.AdaptWindowsCompleted != 3 {
		t.Fatalf("fleet aggregates wrong: adapting=%d windows=%d", ms.AdaptingReplicas, ms.AdaptWindowsCompleted)
	}

	// The window completes: the replica leaves the mid-window set but its
	// completed count keeps aggregating.
	rep.set(httpapi.ContinualState{Phase: "cooldown", WindowsCompleted: 4})
	g.ProbeAll()
	ms = g.State().Models[0]
	if ms.AdaptingReplicas != 0 || ms.AdaptWindowsCompleted != 4 {
		t.Fatalf("post-window aggregates wrong: adapting=%d windows=%d", ms.AdaptingReplicas, ms.AdaptWindowsCompleted)
	}
}
