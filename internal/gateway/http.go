package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/httpapi"
	"repro/internal/telemetry"
)

// Handler returns the gateway API — the same /v1 surface a single serve
// replica exposes, plus the fleet-management routes:
//
//	POST /v1/predict        routed to the input's ring-owner replica
//	GET  /v1/snapshot       proxied summary (?model=name selects the model)
//	POST /v1/snapshot       quorum hot-swap broadcast to a model's replicas
//	GET  /v1/models/{name}  model card + replica fleet standing
//	POST /v1/replicas       {"model","addr"} runtime replica registration
//	GET  /v1/state          shared httpapi.State envelope, gateway section
//	GET  /v1/healthz        liveness
//	GET  /v1/metrics        Prometheus text (shared JSON with ?format=json)
//
// The "predict" middleware chain wraps /v1/predict (and its deprecated
// /predict alias); the "admin" chain wraps snapshot swap and replica
// registration. Observability routes are unchained so a misbehaving rate
// limit can never blind the operator diagnosing it.
func (g *Gateway) Handler() http.Handler {
	api := httpapi.NewAPI()
	predict := g.traceWrap(RoutePredict, g.chains[RoutePredict], http.HandlerFunc(g.handlePredict))
	admin := func(h http.HandlerFunc) http.Handler {
		return g.traceWrap(RouteAdmin, g.chains[RouteAdmin], h)
	}
	api.Handle("/v1/predict", predict.ServeHTTP)
	api.Handle("/v1/snapshot", admin(g.handleSnapshot).ServeHTTP)
	api.Handle("/v1/models/{name}", g.handleModel)
	api.Handle("/v1/replicas", admin(g.handleReplicas).ServeHTTP)
	api.Handle("/v1/state", g.handleState)
	api.Handle("/v1/healthz", g.handleHealthz)
	api.Handle("/v1/metrics", g.handleMetrics)
	api.Handle("/v1/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		// Read g.tracer per request: SetTracer may run after Handler.
		telemetry.TracesHandler(g.tracer).ServeHTTP(w, r)
	})
	api.Deprecated("/predict", "/v1/predict", predict.ServeHTTP)
	api.Deprecated("/healthz", "/v1/healthz", g.handleHealthz)
	api.Deprecated("/metrics", "/v1/metrics", g.handleMetrics)
	return api.Handler()
}

// mwSpanKey carries the middleware span from traceWrap's outer layer to
// the boundary handler that closes it with an "allowed" verdict.
type mwSpanKey struct{}

// traceWrap runs a middleware chain inside a trace: the request roots
// (or continues, via an inbound traceparent) a gateway.<group> span, a
// gateway.middleware child measures chain traversal, and the verdict
// attribute records whether the chain admitted the request or which
// status it was rejected with. A malformed inbound traceparent is
// replaced with a fresh trace, never propagated.
func (g *Gateway) traceWrap(group string, chain Middleware, final http.Handler) http.Handler {
	boundary := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if mw, _ := r.Context().Value(mwSpanKey{}).(*telemetry.Span); mw != nil {
			mw.SetAttr("verdict", "allowed")
			mw.End()
		}
		final.ServeHTTP(w, r)
	})
	inner := chain(boundary)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if g.tracer == nil {
			inner.ServeHTTP(w, r)
			return
		}
		root := g.tracer.StartFromRequest("gateway."+group, r)
		mw := root.Child("gateway.middleware")
		mw.SetAttr("chain", strings.Join(g.cfg.Middlewares[group], ","))
		ctx := telemetry.ContextWithSpan(r.Context(), root)
		ctx = context.WithValue(ctx, mwSpanKey{}, mw)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		inner.ServeHTTP(rec, r.WithContext(ctx))
		// If the boundary never ran, the chain rejected the request; the
		// idempotent End makes this a no-op on the allowed path.
		mw.SetAttr("verdict", fmt.Sprintf("rejected:%d", rec.status))
		mw.End()
		root.SetAttrInt("http.status", int64(rec.status))
		root.End()
	})
}

// writeUnknownModel answers an unknown-model error with the live model
// vocabulary, mirroring the serve tier's single-model answer.
func (g *Gateway) writeUnknownModel(w http.ResponseWriter, name string) {
	httpapi.WriteJSON(w, http.StatusNotFound, httpapi.ErrorBody{
		Error:  fmt.Sprintf("unknown model %q", name),
		Models: g.reg.names(),
	})
}

func (g *Gateway) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpapi.WriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req httpapi.PredictRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	resp, status, err := g.Predict(r.Context(), req.Model, req.X)
	if err != nil {
		if errors.Is(err, errUnknownModel) {
			g.writeUnknownModel(w, req.Model)
			return
		}
		var ce *clientError
		if errors.As(err, &ce) {
			httpapi.WriteJSON(w, ce.status, ce.body)
			return
		}
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		httpapi.WriteError(w, status, err.Error())
		return
	}
	httpapi.WriteJSON(w, status, resp)
}

func (g *Gateway) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		name := r.URL.Query().Get("model")
		m := g.reg.model(name)
		if m == nil {
			g.writeUnknownModel(w, name)
			return
		}
		sum, err := g.anySnapshot(r.Context(), m)
		if err != nil {
			httpapi.WriteError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		httpapi.WriteJSON(w, http.StatusOK, sum)
	case http.MethodPost:
		var req httpapi.SwapRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil || req.Path == "" {
			httpapi.WriteError(w, http.StatusBadRequest, `body must be {"path":"checkpoint.json"}`)
			return
		}
		sum, status, err := g.BroadcastSwap(r.Context(), req.Model, req.Path)
		if err != nil {
			if errors.Is(err, errUnknownModel) {
				g.writeUnknownModel(w, req.Model)
				return
			}
			httpapi.WriteError(w, status, err.Error())
			return
		}
		httpapi.WriteJSON(w, status, sum)
	default:
		httpapi.WriteError(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}

func (g *Gateway) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpapi.WriteError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	name := r.PathValue("name")
	card, status, err := g.ModelCard(r.Context(), name)
	if err != nil {
		if errors.Is(err, errUnknownModel) {
			g.writeUnknownModel(w, name)
			return
		}
		httpapi.WriteError(w, status, err.Error())
		return
	}
	httpapi.WriteJSON(w, status, card)
}

// handleReplicas implements runtime registration: a freshly started serve
// replica POSTs {"model","addr"} and is probed into the fleet.
func (g *Gateway) handleReplicas(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpapi.WriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Model string `json:"model,omitempty"`
		Addr  string `json:"addr"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil || req.Addr == "" {
		httpapi.WriteError(w, http.StatusBadRequest, `body must be {"addr":"host:port","model":"name"?}`)
		return
	}
	st, err := g.Register(r.Context(), req.Model, req.Addr)
	if err != nil {
		// Registered but unreachable: tell the replica so it retries,
		// keep the registration (the prober re-admits it when it comes
		// up).
		httpapi.WriteJSON(w, http.StatusAccepted, st)
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, st)
}

func (g *Gateway) handleState(w http.ResponseWriter, _ *http.Request) {
	httpapi.WriteJSON(w, http.StatusOK, httpapi.State{
		SchemaVersion: httpapi.SchemaVersion,
		Daemon:        "gateway",
		Status:        "ok",
		UptimeSeconds: g.uptimeSeconds(),
		Gateway:       ptr(g.State()),
	})
}

func ptr[T any](v T) *T { return &v }

func (g *Gateway) uptimeSeconds() float64 { return time.Since(g.start).Seconds() }

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	healthy := 0
	total := 0
	for _, m := range g.reg.all() {
		st := m.state()
		healthy += st.HealthyReplicas
		total += len(st.Replicas)
	}
	httpapi.WriteJSON(w, http.StatusOK, map[string]any{
		"status":          "ok",
		"models":          len(g.reg.names()),
		"replicas":        total,
		"healthyReplicas": healthy,
		"uptimeSeconds":   g.uptimeSeconds(),
	})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := g.State()
	perModel := make([]httpapi.Sample, 0, len(st.Models))
	affinity := make([]httpapi.Sample, 0, len(st.Models))
	for _, m := range st.Models {
		perModel = append(perModel, httpapi.Sample{
			Labels: fmt.Sprintf("model=%q", m.Name), Value: float64(m.HealthyReplicas),
		})
		if m.LastShrink != nil {
			affinity = append(affinity, httpapi.Sample{
				Labels: fmt.Sprintf("model=%q", m.Name), Value: m.LastShrink.RetainedOfSurvivors,
			})
		}
	}
	b := httpapi.NewMetricsBuilder("gateway").
		Runtime(g.start).
		Gauge("shiftex_gateway_uptime_seconds", "Time since the gateway started.", g.uptimeSeconds()).
		CounterVec("shiftex_gateway_requests_total", "Predict requests, by outcome.",
			httpapi.Sample{Labels: `outcome="ok"`, Value: float64(st.Requests - st.Errors)},
			httpapi.Sample{Labels: `outcome="error"`, Value: float64(st.Errors)},
			httpapi.Sample{Labels: `outcome="rejected"`, Value: float64(st.Rejected)}).
		CounterVec("shiftex_gateway_session_cache_total", "Fleet-wide session-cache lookups.",
			httpapi.Sample{Labels: `result="hit"`, Value: float64(st.SessionHits)},
			httpapi.Sample{Labels: `result="miss"`, Value: float64(st.SessionMisses)}).
		Counter("shiftex_gateway_failovers_total", "Predicts answered by a ring successor after the owner failed.", float64(st.Failovers)).
		Counter("shiftex_gateway_evictions_total", "Replicas evicted from a ring after consecutive failures.", float64(st.Evictions)).
		Counter("shiftex_gateway_readmissions_total", "Evicted replicas re-admitted after answering again.", float64(st.Readmissions)).
		Gauge("shiftex_gateway_models", "Registered models.", float64(len(st.Models))).
		Gauge("shiftex_gateway_session_cache_entries", "Answers in the session cache.", float64(g.session.len()))
	if len(perModel) > 0 {
		b.GaugeVec("shiftex_gateway_healthy_replicas", "Healthy replicas per model.", perModel...)
	}
	if len(affinity) > 0 {
		b.GaugeVec("shiftex_gateway_shrink_retained", "Fraction of surviving-owner keys retained across the last fleet shrink.", affinity...)
	}
	b.ServeMetrics(w, r)
}
