package gateway

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/service"
)

// Config is the gateway's startup configuration, loadable from JSON
// (LoadConfigFile). The middleware chains are selected here BY NAME from
// the availableMiddlewares table — the same convention the adaptation
// policy registry uses — so a deployment turns auth or load-shedding on
// per route group without recompiling, and a typo fails startup with the
// live name listing rather than silently serving unprotected.
type Config struct {
	// Listen is the gateway's bind address (cmd-level concern, carried
	// here so one JSON file describes the deployment).
	Listen string `json:"listen,omitempty"`

	// Models maps model name → static serve-replica addresses
	// ("host:port"). Replicas may also join at runtime via
	// POST /v1/replicas. Empty is valid when every replica registers.
	Models map[string][]string `json:"models,omitempty"`

	// Middlewares selects, per route group, the named middlewares to run
	// in order. Route groups: "predict" (the hot path) and "admin"
	// (snapshot swap + replica registration). Unknown names fail startup.
	// Nil selects DefaultChains; an explicit empty list disables the
	// group's chain.
	Middlewares map[string][]string `json:"middlewares,omitempty"`

	// AuthTokens are the bearer tokens the "auth" middleware accepts.
	// With no tokens configured the auth middleware rejects everything —
	// turning auth on without credentials is a config error made visible
	// at request time, not an open door.
	AuthTokens []string `json:"authTokens,omitempty"`

	// RatePerSecond and RateBurst parameterize the per-tenant token
	// bucket of the "ratelimit" middleware. Zero RatePerSecond means 100.
	// Zero RateBurst means 2×RatePerSecond.
	RatePerSecond float64 `json:"ratePerSecond,omitempty"`
	RateBurst     float64 `json:"rateBurst,omitempty"`

	// MaxInflight bounds concurrently admitted requests for the
	// "admission" middleware; excess load is shed with 503 + Retry-After.
	// Zero means 256.
	MaxInflight int `json:"maxInflight,omitempty"`

	// ProbeEveryMs is the replica health-probe period; 0 means 500ms.
	ProbeEveryMs int `json:"probeEveryMs,omitempty"`

	// EvictAfter is the consecutive-failure count that evicts a replica
	// from its ring (health probes keep running; a succeeding probe
	// re-admits it). 0 means 2.
	EvictAfter int `json:"evictAfter,omitempty"`

	// Vnodes is the per-replica virtual-node count; 0 means DefaultVnodes.
	Vnodes int `json:"vnodes,omitempty"`

	// SessionCache is the per-gateway session-cache capacity in entries;
	// 0 means 4096, negative disables the cache.
	SessionCache int `json:"sessionCache,omitempty"`

	// Fanout bounds replica calls: per-call timeout, failover retries,
	// and the quorum for snapshot broadcasts.
	Fanout FanoutJSON `json:"fanout,omitempty"`
}

// FanoutJSON is service.FanoutConfig with wire-friendly fields (JSON has
// no duration type; milliseconds are unambiguous).
type FanoutJSON struct {
	Workers   int     `json:"workers,omitempty"`
	TimeoutMs int     `json:"timeoutMs,omitempty"`
	Retries   int     `json:"retries,omitempty"`
	Quorum    float64 `json:"quorum,omitempty"`
}

func (f FanoutJSON) toService() service.FanoutConfig {
	fan := service.FanoutConfig{
		Workers: f.Workers,
		Timeout: time.Duration(f.TimeoutMs) * time.Millisecond,
		Retries: f.Retries,
		Quorum:  f.Quorum,
	}
	if fan.Timeout == 0 {
		fan.Timeout = 2 * time.Second
	}
	return fan
}

// Route groups a middleware chain can be attached to.
const (
	RoutePredict = "predict"
	RouteAdmin   = "admin"
)

// DefaultChains is the middleware selection used when Config.Middlewares
// is nil: log everything, shed overload on the hot path, keep admin
// surface open (deployments add "auth" in config).
func DefaultChains() map[string][]string {
	return map[string][]string{
		RoutePredict: {"logging", "admission"},
		RouteAdmin:   {"logging"},
	}
}

func (c Config) withDefaults() Config {
	if c.Middlewares == nil {
		c.Middlewares = DefaultChains()
	}
	if c.RatePerSecond <= 0 {
		c.RatePerSecond = 100
	}
	if c.RateBurst <= 0 {
		c.RateBurst = 2 * c.RatePerSecond
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.ProbeEveryMs <= 0 {
		c.ProbeEveryMs = 500
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 2
	}
	if c.SessionCache == 0 {
		c.SessionCache = 4096
	}
	return c
}

// LoadConfigFile reads a Config from a JSON file, rejecting unknown keys
// so a misspelled middleware table cannot silently select the defaults.
func LoadConfigFile(path string) (Config, error) {
	var c Config
	f, err := os.Open(path)
	if err != nil {
		return c, fmt.Errorf("gateway: config: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return c, fmt.Errorf("gateway: config %s: %w", path, err)
	}
	return c, nil
}
