package gateway

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/httpapi"
)

func newTestGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// TestMiddlewareOrdering pins that chains run in config order, outermost
// first, by registering two tracer middlewares and watching the
// before/after interleaving.
func TestMiddlewareOrdering(t *testing.T) {
	var mu sync.Mutex
	var trace []string
	tracer := func(name string) func(*Gateway) Middleware {
		return func(*Gateway) Middleware {
			return func(next http.Handler) http.Handler {
				return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					mu.Lock()
					trace = append(trace, name+":before")
					mu.Unlock()
					next.ServeHTTP(w, r)
					mu.Lock()
					trace = append(trace, name+":after")
					mu.Unlock()
				})
			}
		}
	}
	availableMiddlewares["test-outer"] = tracer("outer")
	availableMiddlewares["test-inner"] = tracer("inner")
	defer delete(availableMiddlewares, "test-outer")
	defer delete(availableMiddlewares, "test-inner")

	g := newTestGateway(t, Config{
		Middlewares: map[string][]string{RoutePredict: {"test-outer", "test-inner"}},
	})
	chain, err := buildChain(g, []string{"test-outer", "test-inner"})
	if err != nil {
		t.Fatal(err)
	}
	h := chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		trace = append(trace, "handler")
		mu.Unlock()
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/v1/predict", nil))

	want := []string{"outer:before", "inner:before", "handler", "inner:after", "outer:after"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

// TestMiddlewareUnknownNameFailsStartup pins the registry convention: a
// misspelled middleware is a startup error that names the live set.
func TestMiddlewareUnknownNameFailsStartup(t *testing.T) {
	_, err := New(Config{
		Middlewares: map[string][]string{RoutePredict: {"logging", "authz"}},
	}, nil)
	if err == nil {
		t.Fatal("unknown middleware name must fail startup")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown middleware "authz"`) {
		t.Errorf("error does not name the offender: %v", err)
	}
	for _, name := range AvailableMiddlewares() {
		if !strings.Contains(msg, name) {
			t.Errorf("error does not list available middleware %q: %v", name, err)
		}
	}

	// Unknown route groups fail too (a typo would silently drop a chain).
	_, err = New(Config{Middlewares: map[string][]string{"predictions": {"logging"}}}, nil)
	if err == nil || !strings.Contains(err.Error(), `unknown middleware route group "predictions"`) {
		t.Errorf("unknown route group error = %v", err)
	}
}

// TestAuthShortCircuits pins the 401 short-circuit: without a valid
// bearer token the chain answers before any routing happens, and the
// admin group — configured without auth — stays open.
func TestAuthShortCircuits(t *testing.T) {
	g := newTestGateway(t, Config{
		Models: map[string][]string{"default": {"127.0.0.1:1"}}, // nothing listens; auth rejects first
		Middlewares: map[string][]string{
			RoutePredict: {"auth"},
			RouteAdmin:   {},
		},
		AuthTokens: []string{"s3cret"},
	})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	body := `{"x":[1,2,3]}`
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless predict = %d, want 401", resp.StatusCode)
	}
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Error("401 must carry WWW-Authenticate")
	}

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", strings.NewReader(body))
	req.Header.Set("Authorization", "Bearer wrong")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong-token predict = %d, want 401", resp.StatusCode)
	}

	// Per-route selection: the admin group has no auth middleware, so a
	// tokenless snapshot request is NOT 401 (it fails later, on the dead
	// replica — 503).
	resp, err = http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusUnauthorized {
		t.Fatal("admin group must not inherit the predict group's auth")
	}

	// A valid token clears auth and reaches routing (which 502s/503s on
	// the dead replica — anything but 401 proves the chain passed).
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", strings.NewReader(body))
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusUnauthorized {
		t.Fatalf("valid token still rejected: %d", resp.StatusCode)
	}
}

// TestRateLimitShortCircuits pins the 429 + Retry-After short-circuit and
// the per-tenant isolation of the token bucket.
func TestRateLimitShortCircuits(t *testing.T) {
	g := newTestGateway(t, Config{
		Middlewares:   map[string][]string{RoutePredict: {"ratelimit"}},
		RatePerSecond: 0.001, // effectively no refill within the test
		RateBurst:     2,
		AuthTokens:    []string{"a", "b"},
	})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	do := func(token string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", strings.NewReader(`{"x":[1]}`))
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	// Burst of 2 for tenant "a": third request is shed.
	if s := do("a").StatusCode; s == http.StatusTooManyRequests {
		t.Fatalf("first request already limited")
	}
	do("a")
	resp := do("a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	// Tenant "b" has its own bucket.
	if s := do("b").StatusCode; s == http.StatusTooManyRequests {
		t.Error("tenant b throttled by tenant a's bucket")
	}
	var before = g.metrics.rejected.Load()
	if before == 0 {
		t.Error("rejections not counted in gateway metrics")
	}
}

// TestAdmissionShedsOverload pins the 503 + Retry-After short-circuit
// when the inflight bound is hit.
func TestAdmissionShedsOverload(t *testing.T) {
	g := newTestGateway(t, Config{MaxInflight: 1})
	mw := admissionMiddleware(g)
	release := make(chan struct{})
	started := make(chan struct{})
	h := mw(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
	}))

	go func() {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/v1/predict", nil))
	}()
	select {
	case <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("first request never started")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/predict", nil))
	close(release)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("second inflight request = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 must carry Retry-After")
	}
	var eb httpapi.ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == "" {
		t.Errorf("shed response is not the uniform error body: %q", rec.Body.String())
	}
}

// TestDefaultChainsApplied pins that a nil Middlewares config selects
// DefaultChains and reports them on /v1/state.
func TestDefaultChainsApplied(t *testing.T) {
	g := newTestGateway(t, Config{})
	st := g.State()
	if len(st.Middlewares[RoutePredict]) == 0 {
		t.Fatalf("default predict chain missing: %v", st.Middlewares)
	}
	for _, name := range st.Middlewares[RoutePredict] {
		if _, ok := availableMiddlewares[name]; !ok {
			t.Errorf("default chain references unregistered middleware %q", name)
		}
	}
}
