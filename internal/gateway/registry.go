package gateway

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/httpapi"
)

// registry is the gateway's model table: every named model with its
// replica fleet and consistent-hash ring. Models come from static config
// and from runtime registration (POST /v1/replicas); both paths land here.
type registry struct {
	mu     sync.Mutex
	models map[string]*model
	vnodes int
}

// model is one named checkpoint lineage and the replicas serving it.
type model struct {
	name string
	ring *Ring

	mu       sync.Mutex
	replicas map[string]*replica
	// version is the newest snapshot version any replica has been seen
	// serving — the watermark the session cache invalidates against.
	version    int
	lastShrink *httpapi.ShrinkStats
}

// replica is one serve process inside a model's fleet. healthy mirrors
// ring membership: an unhealthy replica is out of the ring but stays
// registered, and the prober re-admits it when it answers again.
type replica struct {
	addr     string
	healthy  bool
	failures int
	snapshot int
	// driftScore is the replica's latest calibrated drift score, scraped
	// best-effort from /v1/debug/drift by the probe loop; driftSeen marks
	// that at least one scrape found a live, calibrated monitor.
	driftScore float64
	driftSeen  bool
	// adaptPhase / adaptWindows mirror the replica's continual-adaptation
	// controller, scraped best-effort from /v1/debug/adapt; adaptSeen marks
	// that at least one scrape found a controller attached.
	adaptPhase   string
	adaptWindows uint64
	adaptSeen    bool
}

func newRegistry(static map[string][]string, vnodes int) *registry {
	r := &registry{models: make(map[string]*model), vnodes: vnodes}
	for name, addrs := range static {
		for _, a := range addrs {
			r.addReplica(name, a)
		}
	}
	return r
}

// addReplica registers addr under the named model, creating the model on
// first sight. New replicas join the ring immediately (optimistically
// healthy) so a cold gateway can route before the first probe cycle; a
// dead address is evicted by its first failures.
func (r *registry) addReplica(name, addr string) *model {
	r.mu.Lock()
	m, ok := r.models[name]
	if !ok {
		m = &model{name: name, ring: NewRing(r.vnodes), replicas: make(map[string]*replica)}
		r.models[name] = m
	}
	r.mu.Unlock()

	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.replicas[addr]; !ok {
		m.replicas[addr] = &replica{addr: addr, healthy: true}
		m.ring.Add(addr)
	}
	return m
}

// model returns the named model, resolving "" to httpapi.DefaultModel.
func (r *registry) model(name string) *model {
	if name == "" {
		name = httpapi.DefaultModel
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.models[name]
}

// names returns the registered model names, sorted — the live vocabulary
// for unknown-model 404s.
func (r *registry) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.models))
	for n := range r.models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// all returns every model, sorted by name.
func (r *registry) all() []*model {
	r.mu.Lock()
	out := make([]*model, 0, len(r.models))
	for _, m := range r.models {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// knownVersion returns the model's snapshot watermark.
func (m *model) knownVersion() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// noteSuccess records a successful call or probe against addr, observing
// the snapshot version it served. An evicted replica answering again is
// re-admitted to the ring; the return reports that re-admission.
func (m *model) noteSuccess(addr string, snapshot int) (readmitted bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rep, ok := m.replicas[addr]
	if !ok {
		return false
	}
	rep.failures = 0
	rep.snapshot = snapshot
	if snapshot > m.version {
		m.version = snapshot
	}
	if !rep.healthy {
		rep.healthy = true
		m.ring.Add(addr)
		return true
	}
	return false
}

// noteDrift records a drift-score scrape against addr. The probe loop
// calls it only when the replica's monitor is enabled and calibrated, so
// a recorded 0 is a genuine "no drift" reading.
func (m *model) noteDrift(addr string, score float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rep, ok := m.replicas[addr]; ok {
		rep.driftScore = score
		rep.driftSeen = true
	}
}

// noteAdapt records a continual-adaptation scrape against addr. The probe
// loop calls it only when the replica reports a controller attached.
func (m *model) noteAdapt(addr, phase string, windows uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rep, ok := m.replicas[addr]; ok {
		rep.adaptPhase = phase
		rep.adaptWindows = windows
		rep.adaptSeen = true
	}
}

// noteFailure records a failed call or probe against addr. Once the
// consecutive-failure count reaches evictAfter the replica leaves the
// ring, and the key movement that causes is captured as the model's
// lastShrink. The return reports whether this failure evicted.
func (m *model) noteFailure(addr string, evictAfter int) (evicted bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rep, ok := m.replicas[addr]
	if !ok {
		return false
	}
	rep.failures++
	if rep.healthy && rep.failures >= evictAfter {
		rep.healthy = false
		st := m.ring.Remove(addr)
		m.lastShrink = &st
		return true
	}
	return false
}

// replicaAddrs returns all registered replica addresses, sorted —
// including evicted ones (snapshot broadcasts address the whole fleet, so
// a briefly-dead replica fails the broadcast visibly instead of silently
// serving the old snapshot after re-admission).
func (m *model) replicaAddrs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.replicas))
	for a := range m.replicas {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// state renders the model's standing for /v1/state and /v1/models.
func (m *model) state() httpapi.GatewayModelState {
	m.mu.Lock()
	defer m.mu.Unlock()
	reps := make([]httpapi.ReplicaInfo, 0, len(m.replicas))
	healthy := 0
	drifted := 0
	adapting := 0
	var driftSum, driftMax float64
	var adaptWindows uint64
	skew := false
	for _, rep := range m.replicas {
		if rep.healthy {
			healthy++
			// Version skew: a healthy replica serving a snapshot older
			// than the fleet watermark (a partial rollout or failed
			// broadcast swap). Unprobed replicas (snapshot 0) don't
			// count — skew needs two observed, disagreeing versions.
			if rep.snapshot != 0 && rep.snapshot != m.version {
				skew = true
			}
			if rep.driftSeen {
				drifted++
				driftSum += rep.driftScore
				if rep.driftScore > driftMax {
					driftMax = rep.driftScore
				}
			}
			if rep.adaptSeen {
				adaptWindows += rep.adaptWindows
				// Mid-window phases as continual.Controller reports them
				// through httpapi.ContinualState.Phase.
				if rep.adaptPhase == "adapting" || rep.adaptPhase == "validating" {
					adapting++
				}
			}
		}
		reps = append(reps, httpapi.ReplicaInfo{
			Addr: rep.addr, Healthy: rep.healthy, Snapshot: rep.snapshot, Failures: rep.failures,
			DriftScore: rep.driftScore, DriftSeen: rep.driftSeen,
			AdaptPhase: rep.adaptPhase, AdaptWindows: rep.adaptWindows, AdaptSeen: rep.adaptSeen,
		})
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i].Addr < reps[j].Addr })
	var shrink *httpapi.ShrinkStats
	if m.lastShrink != nil {
		s := *m.lastShrink
		shrink = &s
	}
	st := httpapi.GatewayModelState{
		Name:            m.name,
		Snapshot:        m.version,
		Replicas:        reps,
		HealthyReplicas: healthy,
		VersionSkew:     skew,
		DriftMax:        driftMax,
		LastShrink:      shrink,
	}
	if drifted > 0 {
		st.DriftMean = driftSum / float64(drifted)
	}
	st.AdaptingReplicas = adapting
	st.AdaptWindowsCompleted = adaptWindows
	return st
}

func (m *model) String() string { return fmt.Sprintf("model %q (%d replicas)", m.name, m.ring.Len()) }
