// Package gateway is the front tier of the ShiftEx serving stack: one
// process that owns a registry of named models (checkpoint lineages), each
// backed by a fleet of shiftex-serve replicas, and routes /v1 traffic to
// them with consistent-hash affinity.
//
// The design goals, in order:
//
//   - affinity: the same input always lands on the same replica (Ring), so
//     replica-local route caches and micro-batch buckets stay hot, and a
//     fleet shrink moves only the dead replica's keys;
//   - availability: a failed replica call fails over to the next ring
//     successor, repeated failures evict the replica, and the health prober
//     re-admits it when it answers again — clients see retries, not errors;
//   - policy at the edge: a config-selected middleware chain (auth, rate
//     limit, admission control, logging) runs before any replica is
//     touched, chosen by name from availableMiddlewares exactly like
//     adaptation policies are chosen from their registry;
//   - transparency: the gateway speaks the same /v1 surface as a single
//     replica (shared httpapi schema), so promoting a deployment from one
//     serve process to a sharded fleet changes an address, not a client.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/httpapi"
	"repro/internal/monitor"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Gateway routes model-addressed requests across serve replica fleets.
// Build with New, start background health probing with Start, serve
// Handler over HTTP, then Close.
type Gateway struct {
	cfg     Config
	fan     service.FanoutConfig
	reg     *registry
	session *sessionCache
	client  *http.Client
	logger  *slog.Logger
	tracer  *telemetry.Tracer
	start   time.Time
	metrics gwMetrics

	chains map[string]Middleware

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// gwMetrics are the gateway's own counters (replica metrics live on the
// replicas; scrape both).
type gwMetrics struct {
	requests      atomic.Uint64
	errors        atomic.Uint64
	rejected      atomic.Uint64
	sessionHits   atomic.Uint64
	sessionMisses atomic.Uint64
	failovers     atomic.Uint64
	evictions     atomic.Uint64
	readmissions  atomic.Uint64
	logged        atomic.Uint64
}

// New builds a gateway from config. Middleware chains are resolved here:
// an unknown middleware name or route group is a startup error naming the
// live vocabulary, so a misconfigured deployment never comes up half
// protected.
func New(cfg Config, logger *slog.Logger) (*Gateway, error) {
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:     cfg,
		fan:     cfg.Fanout.toService(),
		reg:     newRegistry(cfg.Models, cfg.Vnodes),
		session: newSessionCache(cfg.SessionCache),
		client:  &http.Client{Timeout: cfg.Fanout.toService().Timeout},
		logger:  logger,
		start:   time.Now(),
		chains:  make(map[string]Middleware),
		stop:    make(chan struct{}),
	}
	validGroups := map[string]bool{RoutePredict: true, RouteAdmin: true}
	for group, names := range cfg.Middlewares {
		if !validGroups[group] {
			return nil, fmt.Errorf("gateway: unknown middleware route group %q (available: %s, %s)",
				group, RouteAdmin, RoutePredict)
		}
		chain, err := buildChain(g, names)
		if err != nil {
			return nil, err
		}
		g.chains[group] = chain
	}
	for group := range validGroups {
		if _, ok := g.chains[group]; !ok {
			g.chains[group] = func(next http.Handler) http.Handler { return next }
		}
	}
	return g, nil
}

// SetTracer installs the span recorder. Call before Handler; a nil
// tracer (the default) disables tracing.
func (g *Gateway) SetTracer(t *telemetry.Tracer) { g.tracer = t }

// Tracer returns the installed span recorder (nil when tracing is off).
func (g *Gateway) Tracer() *telemetry.Tracer { return g.tracer }

// logInfo and logWarn emit structured records when a logger is
// configured; the context correlates them with the active trace.
func (g *Gateway) logInfo(ctx context.Context, msg string, args ...any) {
	if g.logger != nil {
		g.logger.InfoContext(ctx, msg, args...)
	}
}

func (g *Gateway) logWarn(ctx context.Context, msg string, args ...any) {
	if g.logger != nil {
		g.logger.WarnContext(ctx, msg, args...)
	}
}

// Start launches the health prober. Safe to skip in tests that drive
// probes manually.
func (g *Gateway) Start() {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		t := time.NewTicker(time.Duration(g.cfg.ProbeEveryMs) * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-t.C:
				g.ProbeAll()
			}
		}
	}()
}

// Close stops background probing.
func (g *Gateway) Close() {
	g.once.Do(func() { close(g.stop) })
	g.wg.Wait()
}

// ProbeAll health-checks every registered replica of every model once,
// concurrently per model fleet on the shared fan-out machinery. Exported
// so tests and the registration path can force a probe cycle.
func (g *Gateway) ProbeAll() {
	for _, m := range g.reg.all() {
		addrs := m.replicaAddrs()
		noRetry := g.fan
		noRetry.Retries = 0
		_, _ = service.FanOut(noRetry, addrs, "probe",
			func(a string) string { return fmt.Sprintf("replica %s", a) }, nil,
			func(addr string) (struct{}, error) {
				sum, err := g.fetchSnapshot(context.Background(), addr, m.name)
				if err != nil {
					if m.noteFailure(addr, g.cfg.EvictAfter) {
						g.metrics.evictions.Add(1)
						g.logWarn(context.Background(), "replica evicted",
							"replica", addr, "model", m.name, "error", err.Error())
					}
					return struct{}{}, err
				}
				if m.noteSuccess(addr, sum.Version) {
					g.metrics.readmissions.Add(1)
					g.logInfo(context.Background(), "replica re-admitted",
						"replica", addr, "model", m.name, "snapshot", sum.Version)
				}
				// Best-effort drift scrape: fleet aggregation rides the
				// probe cycle, and a replica without a monitor (or one
				// still calibrating) simply contributes nothing.
				if ds, err := g.fetchDrift(context.Background(), addr); err == nil &&
					ds.Enabled && ds.Summary != nil && ds.Summary.Calibrated {
					m.noteDrift(addr, ds.Summary.Score)
				}
				// Same contract for the continual-adaptation plane: a
				// replica without a controller contributes nothing.
				if as, err := g.fetchAdapt(context.Background(), addr); err == nil &&
					as.Enabled && as.State != nil {
					m.noteAdapt(addr, as.State.Phase, as.State.WindowsCompleted)
				}
				return struct{}{}, nil
			})
	}
}

// clientError is a replica answer that must reach the client as-is (4xx:
// the request itself is wrong) instead of triggering failover.
type clientError struct {
	status int
	body   httpapi.ErrorBody
}

func (e *clientError) Error() string {
	return fmt.Sprintf("replica answered %d: %s", e.status, e.body.Error)
}

// errUnknownModel asks callers to render the gateway's own model listing.
var errUnknownModel = errors.New("gateway: unknown model")

// Predict routes one input: session cache, then the key's ring owner,
// then ring successors on failure. The returned status is the HTTP code
// the caller should answer with.
func (g *Gateway) Predict(ctx context.Context, modelName string, x tensor.Vector) (httpapi.PredictResponse, int, error) {
	g.metrics.requests.Add(1)
	// span is nil on untraced requests; every call below no-ops then.
	span := telemetry.SpanFromContext(ctx).Child("gateway.route")
	defer span.End()
	// Downstream replica calls propagate the route span, so the serve
	// tier's spans parent under it.
	ctx = telemetry.ContextWithSpan(ctx, span)
	m := g.reg.model(modelName)
	if m == nil {
		g.metrics.errors.Add(1)
		span.SetError(errUnknownModel)
		return httpapi.PredictResponse{}, http.StatusNotFound, errUnknownModel
	}
	span.SetAttr("model", m.name)

	key := KeyHash(x)
	if resp, ok := g.session.get(m.name, key, m.knownVersion()); ok {
		g.metrics.sessionHits.Add(1)
		resp.GatewayCached = true
		span.SetAttrBool("session.hit", true)
		return resp, http.StatusOK, nil
	}
	g.metrics.sessionMisses.Add(1)
	span.SetAttrBool("session.hit", false)

	// Owner records the affinity assignment; Successors is the failover
	// order starting from that owner.
	owner := m.ring.Owner(key)
	span.SetAttr("ring.owner", owner)
	candidates := m.ring.Successors(key, m.ring.Len())
	if span != nil {
		// The failover chain the request would walk, owner first.
		span.SetAttr("ring.successors", strings.Join(candidates, ","))
	}
	if len(candidates) == 0 {
		g.metrics.errors.Add(1)
		err := fmt.Errorf("gateway: no healthy replicas for model %q", m.name)
		span.SetError(err)
		return httpapi.PredictResponse{}, http.StatusServiceUnavailable, err
	}

	var failures []error
	for i, addr := range candidates {
		resp, err := g.callPredict(ctx, addr, m.name, x)
		if err == nil {
			if i > 0 {
				g.metrics.failovers.Add(1)
			}
			if m.noteSuccess(addr, resp.Snapshot) {
				g.metrics.readmissions.Add(1)
			}
			resp.Replica = addr
			g.session.put(m.name, key, resp.Snapshot, resp)
			span.SetAttr("replica", addr)
			span.SetAttrInt("failover.attempts", int64(i))
			return resp, http.StatusOK, nil
		}
		var ce *clientError
		if errors.As(err, &ce) {
			// The request is at fault; no other replica would answer
			// differently and this is not a replica health signal.
			g.metrics.errors.Add(1)
			span.SetError(err)
			return httpapi.PredictResponse{}, ce.status, err
		}
		failures = append(failures, fmt.Errorf("replica %s: %w", addr, err))
		if m.noteFailure(addr, g.cfg.EvictAfter) {
			g.metrics.evictions.Add(1)
			g.logWarn(ctx, "replica evicted",
				"replica", addr, "model", m.name, "error", err.Error())
		}
	}
	g.metrics.errors.Add(1)
	err := fmt.Errorf("gateway: all %d replicas failed for model %q: %w",
		len(candidates), m.name, errors.Join(failures...))
	span.SetError(err)
	return httpapi.PredictResponse{}, http.StatusBadGateway, err
}

// callPredict proxies one predict to one replica under the per-call
// timeout. A 4xx replica answer comes back as *clientError (terminal);
// everything else is a replica failure eligible for failover.
func (g *Gateway) callPredict(ctx context.Context, addr, modelName string, x tensor.Vector) (httpapi.PredictResponse, error) {
	return service.CallTimeout(g.fan.Timeout, func() (httpapi.PredictResponse, error) {
		body, err := json.Marshal(httpapi.PredictRequest{X: x, Model: modelName})
		if err != nil {
			return httpapi.PredictResponse{}, err
		}
		var resp httpapi.PredictResponse
		status, raw, err := g.post(ctx, addr, "/v1/predict", body)
		if err != nil {
			return resp, err
		}
		if status >= 400 && status < 500 {
			var eb httpapi.ErrorBody
			_ = json.Unmarshal(raw, &eb)
			return resp, &clientError{status: status, body: eb}
		}
		if status != http.StatusOK {
			return resp, fmt.Errorf("replica status %d: %s", status, bytes.TrimSpace(raw))
		}
		if err := json.Unmarshal(raw, &resp); err != nil {
			return resp, fmt.Errorf("bad replica response: %w", err)
		}
		return resp, nil
	})
}

// fetchSnapshot reads a replica's snapshot summary (also the health
// probe: a replica that can summarize its snapshot can serve).
func (g *Gateway) fetchSnapshot(ctx context.Context, addr, modelName string) (httpapi.SnapshotSummary, error) {
	var sum httpapi.SnapshotSummary
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/v1/snapshot", nil)
	if err != nil {
		return sum, err
	}
	res, err := g.client.Do(req)
	if err != nil {
		return sum, err
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		return sum, err
	}
	if res.StatusCode != http.StatusOK {
		return sum, fmt.Errorf("replica status %d: %s", res.StatusCode, bytes.TrimSpace(raw))
	}
	if err := json.Unmarshal(raw, &sum); err != nil {
		return sum, fmt.Errorf("bad snapshot summary: %w", err)
	}
	if sum.Model != modelName {
		return sum, fmt.Errorf("replica serves model %q, registered under %q", sum.Model, modelName)
	}
	return sum, nil
}

// fetchDrift scrapes a replica's drift-plane summary (?n=0: no eval ring,
// just the aggregate) for fleet aggregation.
func (g *Gateway) fetchDrift(ctx context.Context, addr string) (monitor.DriftState, error) {
	var ds monitor.DriftState
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/v1/debug/drift?n=0", nil)
	if err != nil {
		return ds, err
	}
	res, err := g.client.Do(req)
	if err != nil {
		return ds, err
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		return ds, err
	}
	if res.StatusCode != http.StatusOK {
		return ds, fmt.Errorf("replica status %d: %s", res.StatusCode, bytes.TrimSpace(raw))
	}
	if err := json.Unmarshal(raw, &ds); err != nil {
		return ds, fmt.Errorf("bad drift state: %w", err)
	}
	return ds, nil
}

// fetchAdapt scrapes a replica's continual-adaptation controller state for
// fleet aggregation.
func (g *Gateway) fetchAdapt(ctx context.Context, addr string) (httpapi.ContinualDebugState, error) {
	var as httpapi.ContinualDebugState
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/v1/debug/adapt", nil)
	if err != nil {
		return as, err
	}
	res, err := g.client.Do(req)
	if err != nil {
		return as, err
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		return as, err
	}
	if res.StatusCode != http.StatusOK {
		return as, fmt.Errorf("replica status %d: %s", res.StatusCode, bytes.TrimSpace(raw))
	}
	if err := json.Unmarshal(raw, &as); err != nil {
		return as, fmt.Errorf("bad adapt state: %w", err)
	}
	return as, nil
}

// post issues one JSON POST to a replica path and returns status + body.
func (g *Gateway) post(ctx context.Context, addr, path string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate the active trace to the replica so its spans join ours.
	if c := telemetry.SpanFromContext(ctx).Context(); c.Valid() {
		telemetry.Inject(req.Header, c)
	}
	res, err := g.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		return 0, nil, err
	}
	return res.StatusCode, raw, nil
}

// BroadcastSwap fans a snapshot hot-swap out to every registered replica
// of the model (healthy or not — a replica that misses a swap must fail
// the broadcast visibly, or it would serve the retired snapshot after
// re-admission). The broadcast succeeds when the configured quorum of
// replicas swapped; the returned summary is the newest resulting
// snapshot.
func (g *Gateway) BroadcastSwap(ctx context.Context, modelName, path string) (httpapi.SnapshotSummary, int, error) {
	m := g.reg.model(modelName)
	if m == nil {
		return httpapi.SnapshotSummary{}, http.StatusNotFound, errUnknownModel
	}
	addrs := m.replicaAddrs()
	if len(addrs) == 0 {
		return httpapi.SnapshotSummary{}, http.StatusServiceUnavailable,
			fmt.Errorf("gateway: no replicas registered for model %q", m.name)
	}
	body, err := json.Marshal(httpapi.SwapRequest{Path: path, Model: m.name})
	if err != nil {
		return httpapi.SnapshotSummary{}, http.StatusInternalServerError, err
	}
	results, errs := service.FanOut(g.fan, addrs, "swap",
		func(a string) string { return fmt.Sprintf("replica %s", a) }, nil,
		func(addr string) (httpapi.SnapshotSummary, error) {
			status, raw, err := g.post(ctx, addr, "/v1/snapshot", body)
			if err != nil {
				return httpapi.SnapshotSummary{}, err
			}
			if status != http.StatusOK {
				var eb httpapi.ErrorBody
				_ = json.Unmarshal(raw, &eb)
				return httpapi.SnapshotSummary{}, fmt.Errorf("replica status %d: %s", status, eb.Error)
			}
			var sum httpapi.SnapshotSummary
			if err := json.Unmarshal(raw, &sum); err != nil {
				return httpapi.SnapshotSummary{}, err
			}
			m.noteSuccess(addr, sum.Version)
			return sum, nil
		})
	var best httpapi.SnapshotSummary
	ok := 0
	var failures []error
	for i := range results {
		if errs[i] != nil {
			failures = append(failures, errs[i])
			continue
		}
		ok++
		if results[i].Version >= best.Version {
			best = results[i]
		}
	}
	if need := g.fan.QuorumNeed(len(addrs)); ok < need {
		return httpapi.SnapshotSummary{}, http.StatusBadGateway,
			fmt.Errorf("gateway: swap below quorum: %d of %d replicas swapped (need %d): %w",
				ok, len(addrs), need, errors.Join(failures...))
	}
	return best, http.StatusOK, nil
}

// ModelCard builds the gateway's view of a model: a healthy replica's
// card plus the fleet standing. The card matches what the replica itself
// serves, so single-model clients see identical bodies from both tiers.
func (g *Gateway) ModelCard(ctx context.Context, name string) (httpapi.ModelInfo, int, error) {
	m := g.reg.model(name)
	if m == nil {
		return httpapi.ModelInfo{}, http.StatusNotFound, errUnknownModel
	}
	st := m.state()
	sum, err := g.anySnapshot(ctx, m)
	if err != nil {
		return httpapi.ModelInfo{}, http.StatusServiceUnavailable,
			fmt.Errorf("gateway: no replica of %q answered: %w", m.name, err)
	}
	return httpapi.ModelInfo{
		SchemaVersion: httpapi.SchemaVersion,
		Name:          m.name,
		Snapshot:      sum.Version,
		Experts:       sum.Experts,
		Epsilon:       sum.Epsilon,
		RouteEpsilon:  sum.RouteEpsilon,
		WindowsDone:   sum.WindowsDone,
		InputDim:      sum.InputDim,
		Policy:        sum.Policy,
		Replicas:      st.Replicas,
	}, http.StatusOK, nil
}

// anySnapshot fetches a snapshot summary from the first answering ring
// member.
func (g *Gateway) anySnapshot(ctx context.Context, m *model) (httpapi.SnapshotSummary, error) {
	var failures []error
	for _, addr := range m.ring.Members() {
		sum, err := g.fetchSnapshot(ctx, addr, m.name)
		if err == nil {
			m.noteSuccess(addr, sum.Version)
			return sum, nil
		}
		failures = append(failures, fmt.Errorf("replica %s: %w", addr, err))
	}
	if len(failures) == 0 {
		failures = append(failures, errors.New("no healthy replicas"))
	}
	return httpapi.SnapshotSummary{}, errors.Join(failures...)
}

// Register adds a replica under a model at runtime and probes it
// immediately so its health and snapshot version are accurate in the
// response.
func (g *Gateway) Register(ctx context.Context, modelName, addr string) (httpapi.GatewayModelState, error) {
	if modelName == "" {
		modelName = httpapi.DefaultModel
	}
	m := g.reg.addReplica(modelName, addr)
	sum, err := g.fetchSnapshot(ctx, addr, m.name)
	if err != nil {
		if m.noteFailure(addr, 1) { // immediate eviction: it never answered
			g.metrics.evictions.Add(1)
		}
		return m.state(), fmt.Errorf("gateway: registered %s but probe failed: %w", addr, err)
	}
	m.noteSuccess(addr, sum.Version)
	return m.state(), nil
}

// State renders the gateway's /v1/state section.
func (g *Gateway) State() httpapi.GatewayState {
	models := g.reg.all()
	states := make([]httpapi.GatewayModelState, 0, len(models))
	for _, m := range models {
		states = append(states, m.state())
	}
	return httpapi.GatewayState{
		Models:        states,
		Requests:      g.metrics.requests.Load(),
		Errors:        g.metrics.errors.Load(),
		Rejected:      g.metrics.rejected.Load(),
		SessionHits:   g.metrics.sessionHits.Load(),
		SessionMisses: g.metrics.sessionMisses.Load(),
		Failovers:     g.metrics.failovers.Load(),
		Evictions:     g.metrics.evictions.Load(),
		Readmissions:  g.metrics.readmissions.Load(),
		Middlewares:   g.cfg.Middlewares,
	}
}
