package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/httpapi"
	"repro/internal/serve"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// startTracedReplica is startReplica with a tracer attached, so the
// serve-side spans a gateway hop produces can be inspected.
func startTracedReplica(t *testing.T, model string) (string, *telemetry.Tracer) {
	t.Helper()
	cp, err := service.LoadCheckpoint(tinyCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := serve.SnapshotFromCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracer("serve", 256)
	srv, err := serve.NewServer(snap, serve.Config{Workers: 1, Model: model, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); _ = srv.Close() })
	return strings.TrimPrefix(ts.URL, "http://"), tr
}

func tracedPredict(t *testing.T, url, traceparent string, x tensor.Vector) *http.Response {
	t.Helper()
	body, _ := json.Marshal(httpapi.PredictRequest{X: x})
	req, err := http.NewRequest(http.MethodPost, url+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set(telemetry.TraceparentHeader, traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestTracePropagationGatewayToServe pins the tentpole contract: one
// trace ID sent by a client is visible on both tiers, with the gateway
// recording middleware + routing spans and the replica recording its
// request under the same trace.
func TestTracePropagationGatewayToServe(t *testing.T) {
	addr, serveTracer := startTracedReplica(t, "default")
	g := newTestGateway(t, Config{
		Models:      map[string][]string{"default": {addr}},
		Middlewares: map[string][]string{RoutePredict: {"logging"}, RouteAdmin: {}},
	})
	gwTracer := telemetry.NewTracer("gateway", 256)
	g.SetTracer(gwTracer)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	const header = "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	want, ok := telemetry.ParseTraceparent(header)
	if !ok {
		t.Fatalf("test header %q did not parse", header)
	}
	x := tensor.NewRNG(7).NormVec(inputDim(t), 0, 1)
	if resp := tracedPredict(t, ts.URL, header, x); resp.StatusCode != http.StatusOK {
		t.Fatalf("traced predict = %d", resp.StatusCode)
	}

	gwSpans := gwTracer.Spans(telemetry.Filter{TraceID: want.TraceID})
	names := map[string]bool{}
	for _, s := range gwSpans {
		names[s.Name] = true
	}
	for _, n := range []string{"gateway." + RoutePredict, "gateway.middleware", "gateway.route"} {
		if !names[n] {
			t.Errorf("gateway recorded no %q span for the inbound trace (got %v)", n, names)
		}
	}

	srvSpans := serveTracer.Spans(telemetry.Filter{TraceID: want.TraceID})
	if len(srvSpans) == 0 {
		t.Fatal("serve replica recorded no spans under the gateway's trace ID")
	}
	srvNames := map[string]bool{}
	for _, s := range srvSpans {
		srvNames[s.Name] = true
		if s.TraceID != want.TraceID {
			t.Errorf("serve span %q trace %s, want %s", s.Name, s.TraceID, want.TraceID)
		}
	}
	for _, n := range []string{"serve.predict", "serve.route", "serve.batch"} {
		if !srvNames[n] {
			t.Errorf("serve replica recorded no %q span (got %v)", n, srvNames)
		}
	}

	// The serve-side debug endpoint must surface the same trace: this is
	// what the smoke test curls across tiers.
	res, err := http.Get("http://" + addr + "/v1/debug/traces?trace=" + want.TraceID.String())
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var payload telemetry.TracesPayload
	if err := json.NewDecoder(res.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Spans) == 0 {
		t.Error("/v1/debug/traces returned no spans for the propagated trace ID")
	}
}

// TestMalformedTraceparentReplaced pins the W3C failure policy: junk in
// the inbound header must not fail the request and must not leak into
// recorded spans — the gateway roots a fresh trace instead.
func TestMalformedTraceparentReplaced(t *testing.T) {
	addr, _ := startTracedReplica(t, "default")
	g := newTestGateway(t, Config{Models: map[string][]string{"default": {addr}}})
	gwTracer := telemetry.NewTracer("gateway", 256)
	g.SetTracer(gwTracer)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	x := tensor.NewRNG(11).NormVec(inputDim(t), 0, 1)
	if resp := tracedPredict(t, ts.URL, "00-abc-def-01", x); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict with malformed traceparent = %d, want 200", resp.StatusCode)
	}

	var root *telemetry.SpanRecord
	for _, s := range gwTracer.Spans(telemetry.Filter{}) {
		if s.Name == "gateway."+RoutePredict {
			root = s
		}
	}
	if root == nil {
		t.Fatal("no gateway.predict span recorded")
	}
	var zero telemetry.TraceID
	if root.TraceID == zero {
		t.Error("replacement trace ID is zero — fresh IDs were not generated")
	}
	if !root.ParentID.IsZero() {
		t.Errorf("root span has parent %s — malformed context was propagated", root.ParentID)
	}
}
