package gateway

import (
	"fmt"
	"testing"

	"repro/internal/tensor"
)

func TestRingDistribution(t *testing.T) {
	r := NewRing(0)
	members := []string{"a:1", "b:2", "c:3", "d:4"}
	for _, m := range members {
		r.Add(m)
	}
	counts := map[string]int{}
	rng := tensor.NewRNG(7)
	const keys = 8000
	for i := 0; i < keys; i++ {
		x := rng.NormVec(16, 0, 1)
		counts[r.Owner(KeyHash(x))]++
	}
	for _, m := range members {
		frac := float64(counts[m]) / keys
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("member %s owns %.1f%% of keys; vnode sharding is badly skewed (%v)", m, frac*100, counts)
		}
	}
}

// TestRingShrinkRetention pins the consistent-hashing guarantee the
// gateway benchmark gates on: removing one member moves ONLY that
// member's keys — every key whose owner survives stays put.
func TestRingShrinkRetention(t *testing.T) {
	r := NewRing(0)
	members := []string{"a:1", "b:2", "c:3", "d:4"}
	for _, m := range members {
		r.Add(m)
	}
	rng := tensor.NewRNG(21)
	const keys = 4000
	for i := 0; i < keys; i++ {
		r.Owner(KeyHash(rng.NormVec(16, 0, 1)))
	}
	st := r.Remove("b:2")
	if st.Removed != "b:2" || st.KeysTracked == 0 {
		t.Fatalf("shrink stats not recorded: %+v", st)
	}
	if st.RetainedOfSurvivors != 1.0 {
		t.Errorf("retainedOfSurvivors = %v, want exactly 1.0: consistent hashing must not move surviving members' keys", st.RetainedOfSurvivors)
	}
	// Removing 1 of 4 members should move roughly a quarter of the keys.
	if st.MovedFraction < 0.10 || st.MovedFraction > 0.45 {
		t.Errorf("movedFraction = %v, want ≈0.25 (only the removed member's keys move)", st.MovedFraction)
	}
	// A second shrink keeps measuring correctly against the reassigned map.
	st2 := r.Remove("c:3")
	if st2.RetainedOfSurvivors != 1.0 {
		t.Errorf("second shrink retainedOfSurvivors = %v, want 1.0", st2.RetainedOfSurvivors)
	}
	if got := r.Members(); len(got) != 2 {
		t.Fatalf("members after two shrinks: %v", got)
	}
}

func TestRingSuccessorsDistinctAndStable(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("m%d:9", i))
	}
	key := KeyHash(tensor.Vector{1, 2, 3})
	succ := r.Successors(key, 5)
	if len(succ) != 5 {
		t.Fatalf("want 5 distinct successors, got %v", succ)
	}
	seen := map[string]bool{}
	for _, s := range succ {
		if seen[s] {
			t.Fatalf("duplicate successor %s in %v", s, succ)
		}
		seen[s] = true
	}
	if owner := r.Owner(key); owner != succ[0] {
		t.Errorf("owner %s is not the first successor %v", owner, succ)
	}
	// Asking for more than the membership truncates.
	if got := r.Successors(key, 50); len(got) != 5 {
		t.Errorf("successors beyond membership: %v", got)
	}
	// Same key, same order on repeat calls.
	again := r.Successors(key, 5)
	for i := range succ {
		if succ[i] != again[i] {
			t.Fatalf("successor order unstable: %v vs %v", succ, again)
		}
	}
}

func TestRingEmptyAndUnknown(t *testing.T) {
	r := NewRing(0)
	if o := r.Owner(42); o != "" {
		t.Errorf("empty ring owner = %q", o)
	}
	if s := r.Successors(42, 3); s != nil {
		t.Errorf("empty ring successors = %v", s)
	}
	st := r.Remove("ghost:1")
	if st.KeysTracked != 0 || st.MovedFraction != 0 {
		t.Errorf("removing unknown member produced stats: %+v", st)
	}
}
