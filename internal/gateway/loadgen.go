package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/httpapi"
	"repro/internal/serve"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// LoadConfig tunes the gateway load generator — an HTTP client fleet
// driving a RUNNING gateway process (and, through it, the serve replica
// processes), so the run exercises the full middleware chain and real
// network failover, not in-process shortcuts.
type LoadConfig struct {
	// URL is the gateway base URL, e.g. "http://127.0.0.1:8080".
	URL string
	// Models are the model names to spread requests across round-robin;
	// empty means the default model.
	Models []string
	// Token is sent as a bearer token when non-empty (required when the
	// predict chain includes "auth").
	Token string
	// TargetQPS paces requests; 0 runs open loop.
	TargetQPS float64
	// Concurrency is the number of client goroutines (default 2/core).
	Concurrency int
	// Repeat is how many passes over the request stream (default 1).
	Repeat int
	// MaxDuration stops the run early when positive.
	MaxDuration time.Duration
	// Retries is the client-side retry budget per request (default 2).
	// The gateway already fails over internally; client retries cover the
	// race where the gateway itself is mid-eviction.
	Retries int
	// KillPid, when positive, is SIGKILLed once KillAtFraction of the
	// stream has been claimed — the mid-load replica-crash experiment.
	KillPid int
	// KillAtFraction is where in the stream the kill fires (default 0.5).
	KillAtFraction float64
	// SamplesPerParty / TestPerParty reproduce the checkpointed
	// scenario's shape, as in serve.LoadConfig.
	SamplesPerParty int
	TestPerParty    int
	// Tracer, when set, roots a loadgen.predict span per request and
	// sends its traceparent with the HTTP request, so a gateway trace
	// can be followed from the client side.
	Tracer *telemetry.Tracer
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Concurrency <= 0 {
		c.Concurrency = 2 * runtime.GOMAXPROCS(0)
	}
	if c.Repeat <= 0 {
		c.Repeat = 1
	}
	if c.Retries <= 0 {
		c.Retries = 2
	}
	if c.KillAtFraction <= 0 || c.KillAtFraction >= 1 {
		c.KillAtFraction = 0.5
	}
	if len(c.Models) == 0 {
		c.Models = []string{httpapi.DefaultModel}
	}
	return c
}

// ErrKillTooLate reports that the stream drained before the mid-load kill
// fired; the run is not valid replica-crash evidence.
var ErrKillTooLate = errors.New("gateway: load finished before the mid-load kill could fire")

// ModelTally is one model's client-side request accounting.
type ModelTally struct {
	Model    string
	Requests uint64
	Correct  uint64
}

// LoadResult aggregates one gateway load run: the client-side view plus
// the gateway's own /v1/state at run end (failovers, evictions, session
// cache, per-model shrink stats).
type LoadResult struct {
	Requests uint64
	Errors   uint64
	Rejected uint64 // middleware rejections observed (401/429/503)
	Retried  uint64 // client retry attempts issued
	Duration time.Duration
	LatencyP50, LatencyP90,
	LatencyP99, LatencyMax time.Duration
	Correct       uint64
	GatewayCached uint64 // answers served from the gateway session cache
	ByReplica     map[string]uint64
	Models        []ModelTally
	Killed        bool
	Gateway       httpapi.GatewayState // gateway /v1/state at run end
}

// Throughput returns completed predictions per second.
func (r *LoadResult) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Duration.Seconds()
}

// Accuracy returns the fraction of completed predictions that were
// correct.
func (r *LoadResult) Accuracy() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Requests)
}

// RunLoad replays the checkpoint's scenario stream against the gateway at
// cfg.URL. Every model in cfg.Models must be served from a checkpoint
// with the same seed/shape (the benchmark script starts all replicas from
// one checkpoint), since the ground truth is regenerated once.
func RunLoad(ctx context.Context, cp *service.Checkpoint, cfg LoadConfig) (*LoadResult, error) {
	cfg = cfg.withDefaults()
	if cfg.URL == "" {
		return nil, errors.New("gateway: loadgen needs the gateway URL")
	}
	items, err := serve.Workload(cp, serve.LoadConfig{
		SamplesPerParty: cfg.SamplesPerParty, TestPerParty: cfg.TestPerParty,
	})
	if err != nil {
		return nil, err
	}
	total := int64(len(items)) * int64(cfg.Repeat)

	var (
		next     atomic.Int64
		requests atomic.Uint64
		errorsN  atomic.Uint64
		rejected atomic.Uint64
		retried  atomic.Uint64
		correct  atomic.Uint64
		cached   atomic.Uint64
		wg       sync.WaitGroup
		mu       sync.Mutex
		replicas = map[string]uint64{}
		byModel  = map[string]*ModelTally{}
	)
	for _, m := range cfg.Models {
		byModel[m] = &ModelTally{Model: m}
	}
	latencies := make([][]time.Duration, cfg.Concurrency)
	client := &http.Client{Timeout: 10 * time.Second}

	start := time.Now()
	deadline := time.Time{}
	if cfg.MaxDuration > 0 {
		deadline = start.Add(cfg.MaxDuration)
	}
	interval := time.Duration(0)
	if cfg.TargetQPS > 0 {
		interval = time.Duration(float64(time.Second) / cfg.TargetQPS)
	}

	// The killer fires once the stream is mid-flight: a real SIGKILL to a
	// replica process while clients are in their request loops.
	killDone := make(chan error, 1)
	killed := false
	if cfg.KillPid > 0 {
		killed = true
		threshold := int64(float64(total) * cfg.KillAtFraction)
		go func() {
			halfTime := time.Time{}
			if cfg.MaxDuration > 0 {
				halfTime = start.Add(time.Duration(float64(cfg.MaxDuration) * cfg.KillAtFraction))
			}
			for next.Load() < threshold && (halfTime.IsZero() || time.Now().Before(halfTime)) {
				if ctx.Err() != nil {
					killDone <- nil
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
			if ctx.Err() == nil && next.Load() >= total {
				killDone <- ErrKillTooLate
				return
			}
			killDone <- syscall.Kill(cfg.KillPid, syscall.SIGKILL)
		}()
	}

	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var lats []time.Duration
			localReplicas := map[string]uint64{}
			localModels := map[string]*ModelTally{}
			for {
				i := next.Add(1) - 1
				if i >= total {
					break
				}
				if ctx.Err() != nil {
					break
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					break
				}
				if interval > 0 {
					sched := start.Add(time.Duration(i) * interval)
					if d := time.Until(sched); d > 0 {
						time.Sleep(d)
					}
				}
				item := items[i%int64(len(items))]
				modelName := cfg.Models[int(i)%len(cfg.Models)]
				reqCtx := ctx
				var span *telemetry.Span
				if cfg.Tracer != nil {
					span = cfg.Tracer.StartRoot("loadgen.predict")
					span.SetAttr("model", modelName)
					reqCtx = telemetry.ContextWithSpan(ctx, span)
				}
				t0 := time.Now()
				resp, status, err := predictOnce(reqCtx, client, cfg, modelName, item.X)
				for attempt := 0; err != nil && attempt < cfg.Retries; attempt++ {
					if ctx.Err() != nil {
						break
					}
					retried.Add(1)
					if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
						rejected.Add(1)
						time.Sleep(50 * time.Millisecond)
					}
					resp, status, err = predictOnce(reqCtx, client, cfg, modelName, item.X)
				}
				span.EndErr(err)
				if err != nil {
					errorsN.Add(1)
					continue
				}
				lats = append(lats, time.Since(t0))
				requests.Add(1)
				if resp.GatewayCached {
					cached.Add(1)
				}
				if resp.Replica != "" {
					localReplicas[resp.Replica]++
				}
				mt := localModels[modelName]
				if mt == nil {
					mt = &ModelTally{Model: modelName}
					localModels[modelName] = mt
				}
				mt.Requests++
				if resp.Class == item.Y {
					correct.Add(1)
					mt.Correct++
				}
			}
			mu.Lock()
			for k, v := range localReplicas {
				replicas[k] += v
			}
			for k, v := range localModels {
				g := byModel[k]
				if g == nil {
					g = &ModelTally{Model: k}
					byModel[k] = g
				}
				g.Requests += v.Requests
				g.Correct += v.Correct
			}
			latencies[w] = lats
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if cfg.KillPid > 0 {
		if err := <-killDone; err != nil {
			return nil, fmt.Errorf("gateway: mid-load kill: %w", err)
		}
	}

	out := &LoadResult{
		Requests:      requests.Load(),
		Errors:        errorsN.Load(),
		Rejected:      rejected.Load(),
		Retried:       retried.Load(),
		Duration:      elapsed,
		Correct:       correct.Load(),
		GatewayCached: cached.Load(),
		ByReplica:     replicas,
		Killed:        killed,
	}
	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		q := func(p float64) time.Duration {
			i := int(p * float64(len(all)))
			if i >= len(all) {
				i = len(all) - 1
			}
			return all[i]
		}
		out.LatencyP50, out.LatencyP90, out.LatencyP99 = q(0.50), q(0.90), q(0.99)
		out.LatencyMax = all[len(all)-1]
	}
	names := make([]string, 0, len(byModel))
	for k := range byModel {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		out.Models = append(out.Models, *byModel[k])
	}

	// The gateway's own accounting — failovers, evictions, session cache,
	// and the per-model shrink stats the affinity gate asserts on.
	st, err := fetchState(ctx, client, cfg.URL)
	if err != nil {
		return nil, fmt.Errorf("gateway: read /v1/state after load: %w", err)
	}
	if st.Gateway == nil {
		return nil, errors.New("gateway: /v1/state has no gateway section")
	}
	out.Gateway = *st.Gateway
	return out, nil
}

// predictOnce issues one predict through the gateway's middleware chain.
// The returned status is 0 on transport errors.
func predictOnce(ctx context.Context, client *http.Client, cfg LoadConfig, model string, x []float64) (httpapi.PredictResponse, int, error) {
	var resp httpapi.PredictResponse
	body, err := json.Marshal(httpapi.PredictRequest{X: x, Model: model})
	if err != nil {
		return resp, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.URL+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		return resp, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+cfg.Token)
	}
	if c := telemetry.SpanFromContext(ctx).Context(); c.Valid() {
		telemetry.Inject(req.Header, c)
	}
	res, err := client.Do(req)
	if err != nil {
		return resp, 0, err
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		return resp, res.StatusCode, err
	}
	if res.StatusCode != http.StatusOK {
		var eb httpapi.ErrorBody
		_ = json.Unmarshal(raw, &eb)
		return resp, res.StatusCode, fmt.Errorf("gateway answered %d: %s", res.StatusCode, eb.Error)
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		return resp, res.StatusCode, err
	}
	return resp, res.StatusCode, nil
}

// fetchState reads the gateway's /v1/state envelope.
func fetchState(ctx context.Context, client *http.Client, url string) (*httpapi.State, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/state", nil)
	if err != nil {
		return nil, err
	}
	res, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	var st httpapi.State
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Artifact converts a load result into the versioned BENCH_gateway.json
// form.
func (r *LoadResult) Artifact(cp *service.Checkpoint, cfg LoadConfig) *experiments.GatewayArtifact {
	cfg = cfg.withDefaults()
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	replicaCount := 0
	for _, m := range r.Gateway.Models {
		replicaCount += len(m.Replicas)
	}
	a := &experiments.GatewayArtifact{
		Schema: experiments.GatewaySchemaVersion,
		Name:   experiments.GatewayArtifactName,
		Options: experiments.GatewayOptions{
			CheckpointWindows: cp.WindowsDone,
			Parties:           len(cp.Aggregator.Assignment),
			SamplesPerParty:   cfg.SamplesPerParty,
			TestPerParty:      cfg.TestPerParty,
			Seed:              cp.Seed,
			Models:            cfg.Models,
			Replicas:          replicaCount,
			TargetQPS:         cfg.TargetQPS,
			Concurrency:       cfg.Concurrency,
			Repeat:            cfg.Repeat,
			ClientRetries:     cfg.Retries,
			PredictChain:      r.Gateway.Middlewares[RoutePredict],
			KillReplica:       r.Killed,
		},
		Requests:         r.Requests,
		Errors:           r.Errors,
		Rejected:         r.Rejected,
		Retried:          r.Retried,
		DurationMs:       ms(r.Duration),
		ThroughputPerSec: r.Throughput(),
		LatencyMsP50:     ms(r.LatencyP50),
		LatencyMsP90:     ms(r.LatencyP90),
		LatencyMsP99:     ms(r.LatencyP99),
		LatencyMsMax:     ms(r.LatencyMax),
		Accuracy:         r.Accuracy(),
		Failovers:        r.Gateway.Failovers,
		Evictions:        r.Gateway.Evictions,
		Readmissions:     r.Gateway.Readmissions,
	}
	if r.Killed {
		a.Options.KillAtFraction = cfg.KillAtFraction
	}
	if hits, misses := r.Gateway.SessionHits, r.Gateway.SessionMisses; hits+misses > 0 {
		a.SessionHitRate = float64(hits) / float64(hits+misses)
	}
	gw := make(map[string]httpapi.GatewayModelState, len(r.Gateway.Models))
	for _, m := range r.Gateway.Models {
		gw[m.Name] = m
	}
	for _, t := range r.Models {
		mr := experiments.GatewayModelResult{Model: t.Model, Requests: t.Requests}
		if t.Requests > 0 {
			mr.Accuracy = float64(t.Correct) / float64(t.Requests)
		}
		if st, ok := gw[t.Model]; ok {
			mr.HealthyReplicas = st.HealthyReplicas
			mr.Replicas = len(st.Replicas)
			if st.LastShrink != nil {
				mr.AffinityRetained = st.LastShrink.RetainedOfSurvivors
				mr.MovedFraction = st.LastShrink.MovedFraction
				mr.KeysTracked = st.LastShrink.KeysTracked
			}
		}
		a.Models = append(a.Models, mr)
	}
	return a
}
