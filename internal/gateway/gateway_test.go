package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/httpapi"
	"repro/internal/serve"
	"repro/internal/service"
	"repro/internal/tensor"
)

const tinyCheckpoint = "../serve/testdata/checkpoint_tiny.json"

// startReplica boots a real serve replica from the committed tiny
// checkpoint and returns its host:port address.
func startReplica(t *testing.T, model string) (string, *serve.Server) {
	t.Helper()
	cp, err := service.LoadCheckpoint(tinyCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := serve.SnapshotFromCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(snap, serve.Config{Workers: 1, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); _ = srv.Close() })
	return strings.TrimPrefix(ts.URL, "http://"), srv
}

func inputDim(t *testing.T) int {
	t.Helper()
	cp, err := service.LoadCheckpoint(tinyCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := serve.SnapshotFromCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	return snap.InputDim()
}

func gatewayPredict(t *testing.T, url string, x tensor.Vector, model string) (httpapi.PredictResponse, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(httpapi.PredictRequest{X: x, Model: model})
	resp, err := http.Post(url+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr httpapi.PredictResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
	}
	return pr, resp
}

func TestGatewayEndToEnd(t *testing.T) {
	a1, _ := startReplica(t, "default")
	a2, _ := startReplica(t, "default")
	g := newTestGateway(t, Config{
		Models:      map[string][]string{"default": {a1, a2}},
		Middlewares: map[string][]string{RoutePredict: {"logging"}, RouteAdmin: {}},
	})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	dim := inputDim(t)
	rng := tensor.NewRNG(3)
	byReplica := map[string]int{}
	var first tensor.Vector
	for i := 0; i < 40; i++ {
		x := rng.NormVec(dim, 0, 1)
		if i == 0 {
			first = x
		}
		pr, resp := gatewayPredict(t, ts.URL, x, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d = %d", i, resp.StatusCode)
		}
		if pr.Model != "default" || pr.Replica == "" {
			t.Fatalf("predict %d response %+v", i, pr)
		}
		if pr.GatewayCached {
			t.Fatalf("fresh input %d claimed gateway-cached", i)
		}
		byReplica[pr.Replica]++
	}
	if len(byReplica) != 2 {
		t.Errorf("40 distinct inputs landed on %d replica(s): %v — ring not sharding", len(byReplica), byReplica)
	}

	// Repeat of the first input: answered from the session cache, no hop.
	pr, _ := gatewayPredict(t, ts.URL, first, "")
	if !pr.GatewayCached {
		t.Error("repeated input not served from the session cache")
	}

	// Same input always routes to the same replica (affinity), cached or
	// not — clear the cache effect by checking the tracker via state.
	var st httpapi.State
	res, err := http.Get(ts.URL + "/v1/state")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if st.Daemon != "gateway" || st.Gateway == nil {
		t.Fatalf("state envelope: %+v", st)
	}
	if len(st.Gateway.Models) != 1 || st.Gateway.Models[0].HealthyReplicas != 2 {
		t.Fatalf("gateway model state: %+v", st.Gateway.Models)
	}
	if st.Gateway.SessionHits == 0 {
		t.Error("session hit not counted")
	}

	// Unknown model: 404 with the live vocabulary.
	_, resp := gatewayPredict(t, ts.URL, first, "nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model = %d", resp.StatusCode)
	}

	// Model card carries the replica fleet.
	res, err = http.Get(ts.URL + "/v1/models/default")
	if err != nil {
		t.Fatal(err)
	}
	var card httpapi.ModelInfo
	if err := json.NewDecoder(res.Body).Decode(&card); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if card.Name != "default" || len(card.Replicas) != 2 {
		t.Fatalf("model card %+v", card)
	}
}

// TestGatewayFailoverAndEviction kills one of two replicas under traffic:
// every request must still answer (ring successor failover), the dead
// replica must be evicted, and the shrink must keep every surviving-owner
// key in place.
func TestGatewayFailoverAndEviction(t *testing.T) {
	a1, _ := startReplica(t, "default")
	cp, _ := service.LoadCheckpoint(tinyCheckpoint)
	snap, _ := serve.SnapshotFromCheckpoint(cp)
	srv2, err := serve.NewServer(snap, serve.Config{Workers: 1, Model: "default"})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	a2 := strings.TrimPrefix(ts2.URL, "http://")

	g := newTestGateway(t, Config{
		Models:       map[string][]string{"default": {a1, a2}},
		Middlewares:  map[string][]string{RoutePredict: {}, RouteAdmin: {}},
		EvictAfter:   1,
		SessionCache: -1, // disable: every request must traverse routing
		Fanout:       FanoutJSON{TimeoutMs: 3000},
	})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	dim := inputDim(t)
	rng := tensor.NewRNG(9)
	for i := 0; i < 30; i++ {
		if _, resp := gatewayPredict(t, ts.URL, rng.NormVec(dim, 0, 1), ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup predict %d = %d", i, resp.StatusCode)
		}
	}

	// Kill replica 2 mid-fleet.
	ts2.Close()
	_ = srv2.Close()

	for i := 0; i < 30; i++ {
		if _, resp := gatewayPredict(t, ts.URL, rng.NormVec(dim, 0, 1), ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("post-kill predict %d = %d: failover must hide the dead replica", i, resp.StatusCode)
		}
	}

	st := g.State()
	if st.Evictions == 0 {
		t.Fatal("dead replica never evicted")
	}
	m := st.Models[0]
	if m.HealthyReplicas != 1 {
		t.Fatalf("healthy replicas = %d, want 1: %+v", m.HealthyReplicas, m.Replicas)
	}
	if m.LastShrink == nil {
		t.Fatal("shrink not recorded")
	}
	if m.LastShrink.Removed != a2 {
		t.Errorf("shrink removed %q, want %q", m.LastShrink.Removed, a2)
	}
	if m.LastShrink.KeysTracked == 0 {
		t.Error("no keys tracked across the shrink")
	}
	if m.LastShrink.RetainedOfSurvivors != 1.0 {
		t.Errorf("retainedOfSurvivors = %v, want 1.0", m.LastShrink.RetainedOfSurvivors)
	}
	if st.Failovers == 0 && st.Evictions == 0 {
		t.Error("neither failovers nor evictions recorded across a replica death")
	}
}

// TestGatewaySwapBroadcastInvalidatesSessions pins the session-cache
// invalidation contract: after a fleet-wide hot swap bumps the snapshot
// version, a previously cached answer must be recomputed, not replayed.
func TestGatewaySwapBroadcastInvalidatesSessions(t *testing.T) {
	a1, _ := startReplica(t, "default")
	a2, _ := startReplica(t, "default")
	g := newTestGateway(t, Config{
		Models:      map[string][]string{"default": {a1, a2}},
		Middlewares: map[string][]string{RoutePredict: {}, RouteAdmin: {}},
	})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	dim := inputDim(t)
	x := tensor.NewRNG(5).NormVec(dim, 0, 1)
	pr1, _ := gatewayPredict(t, ts.URL, x, "")
	if pr2, _ := gatewayPredict(t, ts.URL, x, ""); !pr2.GatewayCached {
		t.Fatal("second request not session-cached")
	} else if pr2.Class != pr1.Class {
		t.Fatal("cached answer diverged")
	}

	// Fleet-wide hot swap via the gateway: quorum broadcast.
	body, _ := json.Marshal(httpapi.SwapRequest{Path: tinyCheckpoint})
	res, err := http.Post(ts.URL+"/v1/snapshot", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sum httpapi.SnapshotSummary
	if err := json.NewDecoder(res.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("swap broadcast = %d", res.StatusCode)
	}
	if sum.Version <= pr1.Snapshot {
		t.Fatalf("swap did not advance the snapshot: %d -> %d", pr1.Snapshot, sum.Version)
	}

	pr3, _ := gatewayPredict(t, ts.URL, x, "")
	if pr3.GatewayCached {
		t.Fatal("session cache served a retired snapshot after the swap")
	}
	if pr3.Snapshot != sum.Version {
		t.Errorf("post-swap answer from snapshot %d, want %d", pr3.Snapshot, sum.Version)
	}
}

// TestServeGatewayV1Parity pins the API-redesign acceptance criterion:
// for a single-model deployment, the gateway and a bare replica answer
// the /v1 surface identically (the gateway adds only its fleet view).
func TestServeGatewayV1Parity(t *testing.T) {
	addr, _ := startReplica(t, "default")
	g := newTestGateway(t, Config{
		Models:      map[string][]string{"default": {addr}},
		Middlewares: map[string][]string{RoutePredict: {}, RouteAdmin: {}},
	})
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	replica := "http://" + addr

	// GET /v1/snapshot: byte-identical bodies.
	get := func(url string) []byte {
		t.Helper()
		res, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(res.Body); err != nil {
			t.Fatal(err)
		}
		if res.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", url, res.StatusCode, buf.String())
		}
		return buf.Bytes()
	}
	if rep, gwb := get(replica+"/v1/snapshot"), get(gw.URL+"/v1/snapshot"); !bytes.Equal(rep, gwb) {
		t.Errorf("snapshot bodies differ:\nreplica: %s\ngateway: %s", rep, gwb)
	}

	// GET /v1/models/default: identical cards modulo the gateway-only
	// replica fleet view.
	var repCard, gwCard httpapi.ModelInfo
	if err := json.Unmarshal(get(replica+"/v1/models/default"), &repCard); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(get(gw.URL+"/v1/models/default"), &gwCard); err != nil {
		t.Fatal(err)
	}
	if len(gwCard.Replicas) != 1 {
		t.Fatalf("gateway card has no fleet view: %+v", gwCard)
	}
	gwCard.Replicas = nil
	if !reflect.DeepEqual(repCard, gwCard) {
		t.Errorf("model cards differ:\nreplica: %+v\ngateway: %+v", repCard, gwCard)
	}

	// POST /v1/predict: identical prediction, gateway adds Replica.
	x := tensor.NewRNG(13).NormVec(repCard.InputDim, 0, 1)
	body, _ := json.Marshal(httpapi.PredictRequest{X: x})
	post := func(url string) httpapi.PredictResponse {
		t.Helper()
		res, err := http.Post(url+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("POST %s/v1/predict = %d", url, res.StatusCode)
		}
		var pr httpapi.PredictResponse
		if err := json.NewDecoder(res.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}
	repPR, gwPR := post(replica), post(gw.URL)
	if gwPR.Replica != addr {
		t.Errorf("gateway response replica = %q, want %q", gwPR.Replica, addr)
	}
	gwPR.Replica, gwPR.Cached = "", repPR.Cached // replica-local cache state may differ
	if repPR != gwPR {
		t.Errorf("predictions differ:\nreplica: %+v\ngateway: %+v", repPR, gwPR)
	}

	// Unknown models answer the same shape on both tiers: 404 + live
	// model listing.
	for _, base := range []string{replica, gw.URL} {
		res, err := http.Get(base + "/v1/models/ghost")
		if err != nil {
			t.Fatal(err)
		}
		var eb httpapi.ErrorBody
		_ = json.NewDecoder(res.Body).Decode(&eb)
		res.Body.Close()
		if res.StatusCode != http.StatusNotFound || len(eb.Models) != 1 || eb.Models[0] != "default" {
			t.Errorf("%s unknown-model answer: %d %+v", base, res.StatusCode, eb)
		}
	}
}

// TestGatewayRegistrationAndProbe pins runtime replica registration and
// the probe-driven health lifecycle at the registry level.
func TestGatewayRegistrationAndProbe(t *testing.T) {
	addr, _ := startReplica(t, "default")
	g := newTestGateway(t, Config{
		Models:      map[string][]string{"default": {}},
		Middlewares: map[string][]string{RoutePredict: {}, RouteAdmin: {}},
	})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	// Register the live replica: 200 with it healthy and probed.
	body, _ := json.Marshal(map[string]string{"model": "default", "addr": addr})
	res, err := http.Post(ts.URL+"/v1/replicas", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var mst httpapi.GatewayModelState
	if err := json.NewDecoder(res.Body).Decode(&mst); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK || mst.HealthyReplicas != 1 {
		t.Fatalf("register live replica: %d %+v", res.StatusCode, mst)
	}
	if mst.Replicas[0].Snapshot == 0 {
		t.Error("registration probe did not record the snapshot version")
	}

	// Register a dead address: 202, kept for the prober to retry.
	body, _ = json.Marshal(map[string]string{"model": "default", "addr": "127.0.0.1:1"})
	res, err = http.Post(ts.URL+"/v1/replicas", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("register dead replica = %d, want 202", res.StatusCode)
	}

	// Predicts still work, routed around the dead registration.
	x := tensor.NewRNG(1).NormVec(inputDim(t), 0, 1)
	if _, resp := gatewayPredict(t, ts.URL, x, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict with one dead registration = %d", resp.StatusCode)
	}

	// A probe pass keeps the live one healthy and does not resurrect the
	// dead one.
	g.ProbeAll()
	st := g.State()
	if st.Models[0].HealthyReplicas != 1 {
		t.Fatalf("after probe: %+v", st.Models[0])
	}
}
