package gateway

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"repro/internal/httpapi"
	"repro/internal/tensor"
)

// Ring is a consistent-hash ring over replica addresses. Each member owns
// Vnodes points on a 64-bit circle; a key is served by the member owning
// the first point clockwise of the key's hash. Removing one member moves
// only the keys that member owned — every other key keeps its replica, so
// replica-local route caches and micro-batch locality survive fleet churn.
//
// Ring also measures that guarantee: it tracks the owner last assigned to
// each routed key, and Remove reports how many tracked keys actually moved
// (ShrinkStats), which the gateway benchmark asserts against.
type Ring struct {
	mu     sync.Mutex
	vnodes int
	points []ringPoint // sorted by hash
	member map[string]bool

	// owners tracks key→member assignments for affinity accounting,
	// bounded to ownersCap entries (measurement, not correctness).
	owners    map[uint64]string
	ownersCap int
}

type ringPoint struct {
	hash   uint64
	member string
}

// DefaultVnodes is the per-member virtual-node count: high enough that a
// 2-16 replica fleet shards within a few percent of even, low enough that
// membership changes stay O(small).
const DefaultVnodes = 64

// defaultOwnersCap bounds the affinity tracker. The benchmark workload is
// far smaller; the bound only protects long-lived gateways.
const defaultOwnersCap = 1 << 16

// NewRing builds an empty ring; vnodes <= 0 selects DefaultVnodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{
		vnodes:    vnodes,
		member:    make(map[string]bool),
		owners:    make(map[uint64]string),
		ownersCap: defaultOwnersCap,
	}
}

func vnodeHash(member string, i int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", member, i)
	return h.Sum64()
}

// KeyHash hashes a request vector to its ring key: the FNV-1a digest of the
// raw float bits, so the same input always lands on the same replica (which
// is what makes the replica-local route cache effective).
func KeyHash(x tensor.Vector) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range x {
		bits := math.Float64bits(v)
		for i := range buf {
			buf[i] = byte(bits >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	return h.Sum64()
}

// Add inserts a member (idempotent).
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.member[member] {
		return
	}
	r.member[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{vnodeHash(member, i), member})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a member and reports how the tracked keys moved: of the
// keys whose last assignment is recorded, how many changed owner, and how
// many of the keys owned by SURVIVING members stayed put (the consistent
// hashing guarantee — keys of the removed member must move, the rest must
// not). Tracked keys are reassigned to their new owners so consecutive
// shrinks measure correctly. Removing an unknown member is a no-op with
// zero stats.
func (r *Ring) Remove(member string) httpapi.ShrinkStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := httpapi.ShrinkStats{Removed: member}
	if !r.member[member] {
		return st
	}
	delete(r.member, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept

	survivorKeys, survivorStayed := 0, 0
	for key, owner := range r.owners {
		now := r.ownerLocked(key)
		if now == "" {
			delete(r.owners, key) // ring emptied
			continue
		}
		st.KeysTracked++
		if owner != member {
			survivorKeys++
			if now == owner {
				survivorStayed++
			}
		}
		if now != owner {
			st.KeysMoved++
			r.owners[key] = now
		}
	}
	if st.KeysTracked > 0 {
		st.MovedFraction = float64(st.KeysMoved) / float64(st.KeysTracked)
	}
	if survivorKeys > 0 {
		st.RetainedOfSurvivors = float64(survivorStayed) / float64(survivorKeys)
	}
	return st
}

// ownerLocked returns the member owning key, or "" on an empty ring.
func (r *Ring) ownerLocked(key uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Owner returns the member owning key and records the assignment for
// affinity accounting. "" means the ring is empty.
func (r *Ring) Owner(key uint64) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.ownerLocked(key)
	if m != "" && (len(r.owners) < r.ownersCap || r.owners[key] != "") {
		r.owners[key] = m
	}
	return m
}

// Successors returns up to n distinct members in ring order starting at the
// key's owner — the failover candidate list. The owner is element 0.
func (r *Ring) Successors(key uint64, n int) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.member) {
		n = len(r.member)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for scanned := 0; scanned < len(r.points) && len(out) < n; scanned++ {
		p := r.points[(i+scanned)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// Members returns the live membership, sorted.
func (r *Ring) Members() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.member))
	for m := range r.member {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.member)
}
