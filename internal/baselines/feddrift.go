package baselines

import (
	"errors"

	"repro/internal/federation"
	"repro/internal/tensor"
)

// FedDrift (Jothimurugesan et al., 2023) maintains a pool of expert models
// and routes each party to the expert with the lowest loss on its local
// data; parties badly served by every expert (loss above a drift threshold
// relative to their previous loss) trigger the creation of a new expert.
// It adapts through coarse loss signals only — without explicit
// covariate/label decomposition it over- or under-spawns when loss changes
// have mixed causes, the behaviour the paper contrasts against.
type FedDrift struct {
	cfg Config
	// driftFactor: a party is "drifted" when its best expert loss exceeds
	// driftFactor × its previous best loss.
	driftFactor float64
	maxExperts  int
	experts     map[int]tensor.Vector
	nextID      int
	assignment  map[int]int
	prevLoss    map[int]float64
	rng         *tensor.RNG
}

var _ federation.Technique = (*FedDrift)(nil)

// NewFedDrift builds the baseline. driftFactor > 1 (e.g. 1.5); maxExperts
// bounds the pool (0 means 6).
func NewFedDrift(cfg Config, driftFactor float64, maxExperts int, seed uint64) (*FedDrift, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if driftFactor <= 1 {
		return nil, errors.New("feddrift: drift factor must exceed 1")
	}
	if maxExperts < 0 {
		return nil, errors.New("feddrift: maxExperts must be non-negative")
	}
	if maxExperts == 0 {
		maxExperts = 6
	}
	return &FedDrift{
		cfg:         cfg,
		driftFactor: driftFactor,
		maxExperts:  maxExperts,
		experts:     make(map[int]tensor.Vector),
		assignment:  make(map[int]int),
		prevLoss:    make(map[int]float64),
		rng:         tensor.NewRNG(seed),
	}, nil
}

// Name implements federation.Technique.
func (t *FedDrift) Name() string { return "feddrift" }

// Assignments implements federation.Technique.
func (t *FedDrift) Assignments() map[int]int {
	out := make(map[int]int, len(t.assignment))
	for k, v := range t.assignment {
		out[k] = v
	}
	return out
}

// route assigns every party to its lowest-loss expert, spawning a new
// expert from the drifted population when warranted.
func (t *FedDrift) route(f *federation.Federation, init tensor.Vector) error {
	if len(t.experts) == 0 {
		t.experts[t.nextID] = init.Clone()
		t.nextID++
	}
	var drifted []int
	for _, p := range f.PartyIDs() {
		// Experts are visited in ID order so loss ties resolve to the
		// lowest expert ID on every run.
		bestID, bestLoss := -1, 0.0
		for _, id := range sortedKeys(t.experts) {
			loss, err := f.PartyLoss(p, t.experts[id])
			if err != nil {
				return err
			}
			if bestID < 0 || loss < bestLoss {
				bestID, bestLoss = id, loss
			}
		}
		t.assignment[p] = bestID
		if prev, ok := t.prevLoss[p]; ok && bestLoss > t.driftFactor*prev {
			drifted = append(drifted, p)
		}
		t.prevLoss[p] = bestLoss
	}
	// Drifted parties get a fresh expert (a single new cluster — the
	// lightweight variant of FedDrift's hierarchical clustering).
	if len(drifted) > 1 && len(t.experts) < t.maxExperts {
		id := t.nextID
		t.nextID++
		t.experts[id] = init.Clone()
		for _, p := range drifted {
			t.assignment[p] = id
			delete(t.prevLoss, p) // new model: previous loss not comparable
		}
	}
	return nil
}

// RunWindow implements federation.Technique.
func (t *FedDrift) RunWindow(f *federation.Federation, w int) ([]float64, error) {
	if err := f.SetWindow(w); err != nil {
		return nil, err
	}
	init, err := f.InitialParams()
	if err != nil {
		return nil, err
	}
	if err := t.route(f, init); err != nil {
		return nil, err
	}

	paramsFor := func(p int) tensor.Vector {
		id, ok := t.assignment[p]
		if !ok {
			return nil
		}
		return t.experts[id]
	}

	cohorts := groupByModel(t.assignment)
	rounds := t.cfg.rounds(w)
	trace := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		for _, id := range sortedKeys(cohorts) {
			members := cohorts[id]
			if len(members) == 0 {
				continue
			}
			selected := sampleParties(members, min(t.cfg.ParticipantsPerRound, len(members)), t.rng)
			cfg := t.cfg.Train
			cfg.Seed = t.rng.Uint64()
			next, _, err := f.Round(t.experts[id], selected, cfg)
			if err != nil {
				return nil, err
			}
			t.experts[id] = next
		}
		acc, err := f.EvalAssignment(paramsFor)
		if err != nil {
			return nil, err
		}
		trace = append(trace, acc)
	}
	// Refresh loss baselines under the freshly trained experts so the
	// next window's drift test compares like with like.
	for _, p := range f.PartyIDs() {
		id := t.assignment[p]
		loss, err := f.PartyLoss(p, t.experts[id])
		if err != nil {
			return nil, err
		}
		t.prevLoss[p] = loss
	}
	return trace, nil
}
