// Package baselines implements the four comparison techniques the paper
// evaluates ShiftEx against (§6): FedProx (proximal single global model),
// OORT (utility-guided participant selection), Fielding (label-distribution
// re-clustering into experts), and FedDrift (loss-pattern expert
// clustering). Each implements federation.Technique so the experiment
// harness can run all five methods under identical streaming workloads.
package baselines

import (
	"fmt"
	"sort"

	"repro/internal/federation"
	"repro/internal/fl"
	"repro/internal/tensor"
)

// Config is the shared training budget for all baselines, matched to the
// ShiftEx configuration so comparisons are fair.
type Config struct {
	BootstrapRounds      int
	RoundsPerWindow      int
	ParticipantsPerRound int
	Train                fl.TrainConfig
}

// DefaultConfig mirrors shiftex.DefaultConfig's budget.
func DefaultConfig() Config {
	return Config{
		BootstrapRounds:      15,
		RoundsPerWindow:      15,
		ParticipantsPerRound: 10,
		Train:                fl.TrainConfig{Epochs: 2, BatchSize: 16, LR: 0.02, Momentum: 0.9},
	}
}

// Validate reports whether the config is usable.
func (c Config) Validate() error {
	switch {
	case c.BootstrapRounds <= 0 || c.RoundsPerWindow <= 0:
		return fmt.Errorf("baselines: rounds must be positive (bootstrap=%d window=%d)", c.BootstrapRounds, c.RoundsPerWindow)
	case c.ParticipantsPerRound <= 0:
		return fmt.Errorf("baselines: participants per round must be positive, got %d", c.ParticipantsPerRound)
	}
	return c.Train.Validate()
}

// rounds returns the round budget for window w.
func (c Config) rounds(w int) int {
	if w == 0 {
		return c.BootstrapRounds
	}
	return c.RoundsPerWindow
}

// sampleParties draws k uniform parties without replacement.
func sampleParties(ids []int, k int, rng *tensor.RNG) []int {
	if k >= len(ids) {
		out := append([]int(nil), ids...)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	idx := rng.Sample(len(ids), k)
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = ids[j]
	}
	return out
}

// sortedKeys returns the map's keys in ascending order. Every loop that
// draws randomness, accumulates floats, or breaks ties must iterate maps
// through it: Go's map order is randomized per run, and the experiment
// grid's parallel/serial parity contract requires bit-identical results.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// groupByModel groups parties by assigned model ID with each cohort's
// members in ascending party order, so cohort sampling is deterministic.
func groupByModel(assignment map[int]int) map[int][]int {
	out := make(map[int][]int)
	for _, p := range sortedKeys(assignment) {
		out[assignment[p]] = append(out[assignment[p]], p)
	}
	return out
}

// singleAssignments maps every party to model 0 — the expert-distribution
// view of single-global-model techniques.
func singleAssignments(f *federation.Federation) map[int]int {
	out := make(map[int]int, f.NumParties())
	for _, p := range f.PartyIDs() {
		out[p] = 0
	}
	return out
}
