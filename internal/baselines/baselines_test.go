package baselines

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/federation"
	"repro/internal/tensor"
)

func quickFederation(t *testing.T, seed uint64) *federation.Federation {
	t.Helper()
	spec := dataset.FMoWSpec()
	spec.NumParties = 10
	spec.SamplesPerParty = 30
	spec.TestPerParty = 15
	spec.Windows = 3
	sc, err := dataset.BuildScenario(spec, dataset.DefaultShiftConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	fed, err := federation.New(sc, []int{spec.InputDim, 24, 12, spec.NumClasses}, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.BootstrapRounds = 5
	cfg.RoundsPerWindow = 4
	cfg.ParticipantsPerRound = 5
	cfg.Train.Epochs = 2
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.BootstrapRounds = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero rounds should error")
	}
	bad = DefaultConfig()
	bad.ParticipantsPerRound = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero participants should error")
	}
	bad = DefaultConfig()
	bad.Train.LR = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("bad train config should error")
	}
}

func runAllWindows(t *testing.T, fed *federation.Federation, tech federation.Technique) [][]float64 {
	t.Helper()
	var traces [][]float64
	for w := 0; w < fed.NumWindows(); w++ {
		trace, err := tech.RunWindow(fed, w)
		if err != nil {
			t.Fatalf("%s window %d: %v", tech.Name(), w, err)
		}
		if len(trace) == 0 {
			t.Fatalf("%s window %d: empty trace", tech.Name(), w)
		}
		traces = append(traces, trace)
	}
	return traces
}

func TestFedProxRuns(t *testing.T) {
	fed := quickFederation(t, 100)
	fp, err := NewFedProx(quickCfg(), 0.1, 101)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Name() != "fedprox" {
		t.Fatal("name")
	}
	traces := runAllWindows(t, fed, fp)
	// Bootstrap must learn something.
	w0 := traces[0]
	if w0[len(w0)-1] <= 0.15 {
		t.Fatalf("fedprox bootstrap accuracy = %g", w0[len(w0)-1])
	}
	// Single model: all parties map to model 0.
	for _, id := range fp.Assignments() {
		if id != 0 {
			t.Fatal("fedprox should be a single-model technique")
		}
	}
	if fp.Global() == nil {
		t.Fatal("global params missing")
	}
}

func TestFedProxValidation(t *testing.T) {
	if _, err := NewFedProx(quickCfg(), -1, 1); err == nil {
		t.Fatal("negative mu should error")
	}
	bad := quickCfg()
	bad.RoundsPerWindow = 0
	if _, err := NewFedProx(bad, 0.1, 1); err == nil {
		t.Fatal("bad config should error")
	}
	fed := quickFederation(t, 102)
	fp, err := NewFedProx(quickCfg(), 0.1, 103)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fp.RunWindow(fed, 1); err == nil {
		t.Fatal("window 1 before window 0 should error")
	}
	if len(fp.Assignments()) != 0 {
		t.Fatal("assignments before any window should be empty")
	}
}

func TestOORTRuns(t *testing.T) {
	fed := quickFederation(t, 110)
	o, err := NewOORT(quickCfg(), 0.2, 111)
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "oort" {
		t.Fatal("name")
	}
	runAllWindows(t, fed, o)
	// Utilities must be recorded for selected parties.
	if len(o.utility) == 0 {
		t.Fatal("no utilities recorded")
	}
}

func TestOORTValidation(t *testing.T) {
	if _, err := NewOORT(quickCfg(), -0.1, 1); err == nil {
		t.Fatal("negative explore should error")
	}
	if _, err := NewOORT(quickCfg(), 1.1, 1); err == nil {
		t.Fatal("explore > 1 should error")
	}
	fed := quickFederation(t, 112)
	o, err := NewOORT(quickCfg(), 0.2, 113)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.RunWindow(fed, 2); err == nil {
		t.Fatal("window before bootstrap should error")
	}
}

func TestOORTSelectionPrefersHighLoss(t *testing.T) {
	o, err := NewOORT(quickCfg(), 0, 7) // no exploration
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{0, 1, 2, 3, 4}
	for _, id := range ids {
		o.utility[id] = float64(id) // party 4 most useful
	}
	sel := o.selectCohort(ids, 2)
	if len(sel) != 2 || sel[0] != 4 || sel[1] != 3 {
		t.Fatalf("selection = %v, want [4 3]", sel)
	}
}

func TestFieldingRuns(t *testing.T) {
	fed := quickFederation(t, 120)
	fl, err := NewFielding(quickCfg(), 4, 121)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Name() != "fielding" {
		t.Fatal("name")
	}
	runAllWindows(t, fed, fl)
	assigns := fl.Assignments()
	if len(assigns) != fed.NumParties() {
		t.Fatalf("assignments = %d", len(assigns))
	}
}

func TestFieldingValidation(t *testing.T) {
	if _, err := NewFielding(quickCfg(), -1, 1); err == nil {
		t.Fatal("negative maxClusters should error")
	}
	bad := quickCfg()
	bad.BootstrapRounds = -1
	if _, err := NewFielding(bad, 0, 1); err == nil {
		t.Fatal("bad config should error")
	}
}

func TestFedDriftRuns(t *testing.T) {
	fed := quickFederation(t, 130)
	fd, err := NewFedDrift(quickCfg(), 1.5, 5, 131)
	if err != nil {
		t.Fatal(err)
	}
	if fd.Name() != "feddrift" {
		t.Fatal("name")
	}
	runAllWindows(t, fed, fd)
	if len(fd.experts) < 1 || len(fd.experts) > 5 {
		t.Fatalf("expert pool = %d", len(fd.experts))
	}
	assigns := fd.Assignments()
	if len(assigns) != fed.NumParties() {
		t.Fatalf("assignments = %d", len(assigns))
	}
	for p, id := range assigns {
		if _, ok := fd.experts[id]; !ok {
			t.Fatalf("party %d assigned to missing expert %d", p, id)
		}
	}
}

func TestFedDriftValidation(t *testing.T) {
	if _, err := NewFedDrift(quickCfg(), 1.0, 5, 1); err == nil {
		t.Fatal("drift factor <=1 should error")
	}
	if _, err := NewFedDrift(quickCfg(), 1.5, -1, 1); err == nil {
		t.Fatal("negative maxExperts should error")
	}
}

func TestSampleParties(t *testing.T) {
	rng := tensor.NewRNG(1)
	ids := []int{10, 20, 30, 40}
	s := sampleParties(ids, 2, rng)
	if len(s) != 2 {
		t.Fatalf("sample = %v", s)
	}
	all := sampleParties(ids, 10, rng)
	if len(all) != 4 {
		t.Fatalf("oversample = %v", all)
	}
	// Input must not be reordered.
	if ids[0] != 10 || ids[3] != 40 {
		t.Fatal("sampleParties mutated input")
	}
}

func TestIFCARuns(t *testing.T) {
	fed := quickFederation(t, 140)
	ifca, err := NewIFCA(quickCfg(), 3, 141)
	if err != nil {
		t.Fatal(err)
	}
	if ifca.Name() != "ifca" {
		t.Fatal("name")
	}
	runAllWindows(t, fed, ifca)
	assigns := ifca.Assignments()
	if len(assigns) != fed.NumParties() {
		t.Fatalf("assignments = %d", len(assigns))
	}
	for _, c := range assigns {
		if c < 0 || c >= 3 {
			t.Fatalf("cluster id %d out of range", c)
		}
	}
}

func TestIFCAValidation(t *testing.T) {
	if _, err := NewIFCA(quickCfg(), 0, 1); err == nil {
		t.Fatal("zero clusters should error")
	}
	bad := quickCfg()
	bad.RoundsPerWindow = 0
	if _, err := NewIFCA(bad, 2, 1); err == nil {
		t.Fatal("bad config should error")
	}
	fed := quickFederation(t, 142)
	ifca, err := NewIFCA(quickCfg(), 2, 143)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ifca.RunWindow(fed, 1); err == nil {
		t.Fatal("window before bootstrap should error")
	}
}
