package baselines

import (
	"errors"
	"math"
	"sort"

	"repro/internal/federation"
	"repro/internal/tensor"
)

// OORT (Lai et al., OSDI '21) trains a single global model but selects
// participants by statistical utility — parties whose recent training loss
// is high are more informative — blended with an exploration fraction of
// uniformly random picks. Its utility scores assume a stationary world: a
// distribution shift changes which parties are informative, but the stale
// scores keep steering selection, which is why the paper observes
// underreaction rather than adaptation.
type OORT struct {
	cfg     Config
	explore float64 // fraction of each cohort drawn uniformly at random
	global  tensor.Vector
	utility map[int]float64
	rng     *tensor.RNG
	last    *federation.Federation
}

var _ federation.Technique = (*OORT)(nil)

// NewOORT builds the baseline. explore in [0,1] is the exploration
// fraction (OORT's default is ~0.1-0.3).
func NewOORT(cfg Config, explore float64, seed uint64) (*OORT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if explore < 0 || explore > 1 {
		return nil, errors.New("oort: explore must be in [0,1]")
	}
	return &OORT{
		cfg:     cfg,
		explore: explore,
		utility: make(map[int]float64),
		rng:     tensor.NewRNG(seed),
	}, nil
}

// Name implements federation.Technique.
func (t *OORT) Name() string { return "oort" }

// Assignments implements federation.Technique.
func (t *OORT) Assignments() map[int]int {
	if t.last == nil {
		return map[int]int{}
	}
	return singleAssignments(t.last)
}

// select picks the cohort: top-utility parties plus an exploration tail.
func (t *OORT) selectCohort(ids []int, k int) []int {
	if k >= len(ids) {
		return sampleParties(ids, k, t.rng)
	}
	exploreN := int(math.Round(t.explore * float64(k)))
	exploitN := k - exploreN

	// Rank by utility descending; unseen parties score +Inf so that every
	// party is tried at least once (OORT's pacer behaviour).
	ranked := append([]int(nil), ids...)
	sort.SliceStable(ranked, func(i, j int) bool {
		return t.score(ranked[i]) > t.score(ranked[j])
	})
	selected := ranked[:exploitN]
	rest := ranked[exploitN:]
	selected = append(append([]int(nil), selected...), sampleParties(rest, exploreN, t.rng)...)
	return selected
}

func (t *OORT) score(id int) float64 {
	u, ok := t.utility[id]
	if !ok {
		return math.Inf(1)
	}
	return u
}

// RunWindow implements federation.Technique.
func (t *OORT) RunWindow(f *federation.Federation, w int) ([]float64, error) {
	if err := f.SetWindow(w); err != nil {
		return nil, err
	}
	if w == 0 {
		init, err := f.InitialParams()
		if err != nil {
			return nil, err
		}
		t.global = init
	}
	if t.global == nil {
		return nil, errors.New("oort: window 0 must run first")
	}
	t.last = f
	rounds := t.cfg.rounds(w)
	trace := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		selected := t.selectCohort(f.PartyIDs(), t.cfg.ParticipantsPerRound)
		cfg := t.cfg.Train
		cfg.Seed = t.rng.Uint64()
		next, updates, err := f.Round(t.global, selected, cfg)
		if err != nil {
			return nil, err
		}
		t.global = next
		// Utility = |B_i| · sqrt(mean loss²) ≈ sample count × loss, the
		// statistical-utility form of the OORT paper.
		for _, u := range updates {
			t.utility[u.PartyID] = float64(u.NumSamples) * math.Sqrt(u.TrainLoss*u.TrainLoss)
		}
		acc, err := f.EvalAssignment(func(int) tensor.Vector { return t.global })
		if err != nil {
			return nil, err
		}
		trace = append(trace, acc)
	}
	return trace, nil
}
