package baselines

import (
	"errors"

	"repro/internal/federation"
	"repro/internal/tensor"
)

// FedProx (Li et al., MLSys '20) trains a single global model with a
// proximal term that pulls each party's local update toward the global
// parameters, stabilizing training under non-IID data. It has no shift
// detection or adaptation mechanism: at every window it simply keeps
// training the one global model, which is exactly the brittleness the
// paper's Tables 1-2 exhibit.
type FedProx struct {
	cfg    Config
	mu     float64
	global tensor.Vector
	rng    *tensor.RNG
	last   *federation.Federation
}

var _ federation.Technique = (*FedProx)(nil)

// NewFedProx builds the baseline. mu is the proximal coefficient.
func NewFedProx(cfg Config, mu float64, seed uint64) (*FedProx, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mu < 0 {
		return nil, errors.New("fedprox: mu must be non-negative")
	}
	return &FedProx{cfg: cfg, mu: mu, rng: tensor.NewRNG(seed)}, nil
}

// Name implements federation.Technique.
func (t *FedProx) Name() string { return "fedprox" }

// Assignments implements federation.Technique.
func (t *FedProx) Assignments() map[int]int {
	if t.last == nil {
		return map[int]int{}
	}
	return singleAssignments(t.last)
}

// Global returns the current global parameters.
func (t *FedProx) Global() tensor.Vector { return t.global }

// RunWindow implements federation.Technique.
func (t *FedProx) RunWindow(f *federation.Federation, w int) ([]float64, error) {
	if err := f.SetWindow(w); err != nil {
		return nil, err
	}
	if w == 0 {
		init, err := f.InitialParams()
		if err != nil {
			return nil, err
		}
		t.global = init
	}
	if t.global == nil {
		return nil, errors.New("fedprox: window 0 must run first")
	}
	t.last = f
	rounds := t.cfg.rounds(w)
	trace := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		selected := sampleParties(f.PartyIDs(), t.cfg.ParticipantsPerRound, t.rng)
		cfg := t.cfg.Train
		cfg.ProxMu = t.mu
		cfg.Seed = t.rng.Uint64()
		next, _, err := f.Round(t.global, selected, cfg)
		if err != nil {
			return nil, err
		}
		t.global = next
		acc, err := f.EvalAssignment(func(int) tensor.Vector { return t.global })
		if err != nil {
			return nil, err
		}
		trace = append(trace, acc)
	}
	return trace, nil
}
