package baselines

import (
	"errors"
	"fmt"

	"repro/internal/federation"
	"repro/internal/flips"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Fielding (Li et al., 2024) re-clusters parties by their label
// distributions at every window and trains one expert per label cluster.
// It adapts to label shift — re-clustering follows the moving histograms —
// but is blind to covariate shift: two parties with identical label
// mixtures but different input corruption land in the same expert.
type Fielding struct {
	cfg         Config
	maxClusters int
	experts     map[int]tensor.Vector // cluster id -> params
	assignment  map[int]int           // party -> cluster id
	rng         *tensor.RNG
}

var _ federation.Technique = (*Fielding)(nil)

// NewFielding builds the baseline. maxClusters bounds the label-cluster
// sweep; 0 means 5.
func NewFielding(cfg Config, maxClusters int, seed uint64) (*Fielding, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if maxClusters < 0 {
		return nil, errors.New("fielding: maxClusters must be non-negative")
	}
	if maxClusters == 0 {
		maxClusters = 5
	}
	return &Fielding{
		cfg:         cfg,
		maxClusters: maxClusters,
		experts:     make(map[int]tensor.Vector),
		assignment:  make(map[int]int),
		rng:         tensor.NewRNG(seed),
	}, nil
}

// Name implements federation.Technique.
func (t *Fielding) Name() string { return "fielding" }

// Assignments implements federation.Technique.
func (t *Fielding) Assignments() map[int]int {
	out := make(map[int]int, len(t.assignment))
	for k, v := range t.assignment {
		out[k] = v
	}
	return out
}

// recluster rebuilds label clusters from current-window histograms and
// carries expert parameters over to the most similar new cluster.
func (t *Fielding) recluster(f *federation.Federation, init tensor.Vector) error {
	hists := f.PartyHists()
	sel, err := flips.New(f.PartyIDs(), hists, t.maxClusters, t.rng)
	if err != nil {
		return fmt.Errorf("fielding recluster: %w", err)
	}
	groups := sel.Clusters()

	// Compute each new cluster's mean histogram for expert carry-over.
	newCentroid := make([]stats.Histogram, len(groups))
	for c, members := range groups {
		hs := make([]stats.Histogram, len(members))
		counts := make([]int, len(members))
		for i, p := range members {
			hs[i] = hists[p]
			counts[i] = 1
		}
		m, err := stats.MergeHistograms(hs, counts)
		if err != nil {
			return err
		}
		newCentroid[c] = m
	}

	// Old cluster centroids (from surviving assignment) for matching.
	// Parties are visited in sorted order so the float accumulation is
	// associativity-stable across runs.
	oldCentroid := make(map[int]stats.Histogram)
	oldCount := make(map[int]int)
	for _, p := range sortedKeys(t.assignment) {
		c := t.assignment[p]
		if oldCentroid[c] == nil {
			oldCentroid[c] = make(stats.Histogram, len(hists[p]))
		}
		for i, v := range hists[p] {
			oldCentroid[c][i] += v
		}
		oldCount[c]++
	}
	for c := range oldCentroid {
		oldCentroid[c] = oldCentroid[c].Normalize()
	}

	newExperts := make(map[int]tensor.Vector, len(groups))
	newAssignment := make(map[int]int, f.NumParties())
	for c, members := range groups {
		// Carry over the old expert with the closest label centroid; ties
		// resolve to the lowest cluster ID.
		bestOld, bestJSD := -1, 2.0
		for _, oc := range sortedKeys(oldCentroid) {
			j, err := stats.JSD(newCentroid[c], oldCentroid[oc])
			if err != nil {
				continue
			}
			if j < bestJSD {
				bestOld, bestJSD = oc, j
			}
		}
		if params, ok := t.experts[bestOld]; ok {
			newExperts[c] = params.Clone()
		} else {
			newExperts[c] = init.Clone()
		}
		for _, p := range members {
			newAssignment[p] = c
		}
	}
	t.experts = newExperts
	t.assignment = newAssignment
	return nil
}

// RunWindow implements federation.Technique.
func (t *Fielding) RunWindow(f *federation.Federation, w int) ([]float64, error) {
	if err := f.SetWindow(w); err != nil {
		return nil, err
	}
	init, err := f.InitialParams()
	if err != nil {
		return nil, err
	}
	if err := t.recluster(f, init); err != nil {
		return nil, err
	}

	paramsFor := func(p int) tensor.Vector {
		c, ok := t.assignment[p]
		if !ok {
			return nil
		}
		return t.experts[c]
	}

	rounds := t.cfg.rounds(w)
	trace := make([]float64, 0, rounds)
	cohorts := groupByModel(t.assignment)
	for r := 0; r < rounds; r++ {
		for _, c := range sortedKeys(cohorts) {
			members := cohorts[c]
			selected := sampleParties(members, min(t.cfg.ParticipantsPerRound, len(members)), t.rng)
			cfg := t.cfg.Train
			cfg.Seed = t.rng.Uint64()
			next, _, err := f.Round(t.experts[c], selected, cfg)
			if err != nil {
				return nil, err
			}
			t.experts[c] = next
		}
		acc, err := f.EvalAssignment(paramsFor)
		if err != nil {
			return nil, err
		}
		trace = append(trace, acc)
	}
	return trace, nil
}
