package baselines

import (
	"errors"

	"repro/internal/federation"
	"repro/internal/tensor"
)

// IFCA (Ghosh et al., NeurIPS '20; cited by the paper among clustered-FL
// methods) maintains a fixed number of cluster models; every round each
// party evaluates all cluster models on its local data and joins the one
// with the lowest loss, then trains it. Cluster count is static — IFCA
// cannot grow capacity when new regimes appear, the limitation the paper's
// dynamic expert creation removes.
type IFCA struct {
	cfg         Config
	numClusters int
	experts     map[int]tensor.Vector
	assignment  map[int]int
	rng         *tensor.RNG
}

var _ federation.Technique = (*IFCA)(nil)

// NewIFCA builds the baseline with a fixed cluster count.
func NewIFCA(cfg Config, numClusters int, seed uint64) (*IFCA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numClusters < 1 {
		return nil, errors.New("ifca: need >=1 cluster")
	}
	return &IFCA{
		cfg:         cfg,
		numClusters: numClusters,
		experts:     make(map[int]tensor.Vector),
		assignment:  make(map[int]int),
		rng:         tensor.NewRNG(seed),
	}, nil
}

// Name implements federation.Technique.
func (t *IFCA) Name() string { return "ifca" }

// Assignments implements federation.Technique.
func (t *IFCA) Assignments() map[int]int {
	out := make(map[int]int, len(t.assignment))
	for k, v := range t.assignment {
		out[k] = v
	}
	return out
}

// route re-assigns every party to its min-loss cluster model.
func (t *IFCA) route(f *federation.Federation) error {
	for _, p := range f.PartyIDs() {
		best, bestLoss := -1, 0.0
		for c := 0; c < t.numClusters; c++ {
			loss, err := f.PartyLoss(p, t.experts[c])
			if err != nil {
				return err
			}
			if best < 0 || loss < bestLoss {
				best, bestLoss = c, loss
			}
		}
		t.assignment[p] = best
	}
	return nil
}

// RunWindow implements federation.Technique.
func (t *IFCA) RunWindow(f *federation.Federation, w int) ([]float64, error) {
	if err := f.SetWindow(w); err != nil {
		return nil, err
	}
	if w == 0 {
		// Independent random initializations break the symmetry between
		// clusters (the IFCA paper's requirement).
		init, err := f.InitialParams()
		if err != nil {
			return nil, err
		}
		for c := 0; c < t.numClusters; c++ {
			params := init.Clone()
			for i := range params {
				params[i] += 0.05 * t.rng.Norm()
			}
			t.experts[c] = params
		}
	}
	if len(t.experts) == 0 {
		return nil, errors.New("ifca: window 0 must run first")
	}

	paramsFor := func(p int) tensor.Vector {
		c, ok := t.assignment[p]
		if !ok {
			return t.experts[0]
		}
		return t.experts[c]
	}

	rounds := t.cfg.rounds(w)
	trace := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		// IFCA re-estimates cluster identities every round.
		if err := t.route(f); err != nil {
			return nil, err
		}
		cohorts := groupByModel(t.assignment)
		for _, c := range sortedKeys(cohorts) {
			members := cohorts[c]
			if len(members) == 0 {
				continue
			}
			selected := sampleParties(members, min(t.cfg.ParticipantsPerRound, len(members)), t.rng)
			cfg := t.cfg.Train
			cfg.Seed = t.rng.Uint64()
			next, _, err := f.Round(t.experts[c], selected, cfg)
			if err != nil {
				return nil, err
			}
			t.experts[c] = next
		}
		acc, err := f.EvalAssignment(paramsFor)
		if err != nil {
			return nil, err
		}
		trace = append(trace, acc)
	}
	return trace, nil
}
